#include "core/pms.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "cache/digest.hpp"
#include "core/codec.hpp"
#include "core/persistence.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/log.hpp"
#include "util/strfmt.hpp"

namespace pmware::core {

namespace {

constexpr const char* kPlaceEvents = "pms_place_events_total";
constexpr const char* kRouteEvents = "pms_route_events_total";
constexpr const char* kEncounters = "pms_encounters_total";
constexpr const char* kProfileSyncs = "pms_profile_syncs_total";
constexpr const char* kTokenRefreshes = "pms_token_refreshes_total";
constexpr const char* kGcaOffloads = "pms_gca_offloads_total";
constexpr const char* kGcaLocal = "pms_gca_local_total";
constexpr const char* kGcaResyncs = "pms_gca_resyncs_total";
constexpr const char* kSyncFailures = "pms_sync_failures_total";
constexpr const char* kOutboxEnqueued = "pms_outbox_enqueued_total";
constexpr const char* kOutboxDelivered = "pms_outbox_delivered_total";
constexpr const char* kOutboxRecovered = "pms_outbox_recovered_total";
constexpr const char* kOutboxEvicted = "pms_outbox_evicted_total";
constexpr const char* kOutboxDropped = "pms_outbox_dropped_total";
constexpr const char* kOutboxDepth = "pms_outbox_depth";
constexpr const char* kRestarts = "pms_restarts_total";
constexpr const char* kCheckpointBytes = "pms_checkpoint_bytes";
constexpr const char* kRestoreWall = "pms_restore_wall_us";
constexpr const char* kColdProfileDays = "pms_cold_profile_days_recovered_total";

/// Sync-failure kinds beyond the outbox's SyncKinds (direct sends).
constexpr const char* kKindLabel = "label";
constexpr const char* kKindWipe = "wipe";
/// All kind labels pms_sync_failures_total is emitted under, for
/// PmsStats::sync_failures aggregation.
constexpr const char* kFailureKinds[] = {"profile", "place", "place_delete",
                                         "route",   "encounter", "label",
                                         "wipe"};

// Digest primitives (dirty detection, offload cache keys) come from the
// cache subsystem so device and cloud derive identical values.
using cache::fnv1a;
using cache::fold;
constexpr std::uint64_t kDigestBasis = cache::kDigestBasis;

/// Metric-series name of every PMS-side GCA offload cache.
constexpr const char* kGcaCacheName = "pms_gca";
/// The offload cache holds one entry — the result for the current movement
/// graph; any growth of the graph changes the digest and recomputes.
constexpr int kGcaCacheKey = 0;

// --- Checkpoint wire format (Pms::save/restore) ---
// A manifest line {"format","version","lines","digest"} followed by `lines`
// JSONL lines of sectioned body: each section is a {"section","lines"} header
// followed by that many payload lines. The digest is fnv1a over the body
// bytes, so restore() detects a torn or bit-flipped checkpoint before
// committing anything.
constexpr const char* kCheckpointFormat = "pms-checkpoint";
constexpr std::int64_t kCheckpointVersion = 1;

std::uint64_t parse_hex64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 16);
}

std::string hex64(std::uint64_t value) {
  return strfmt("%016llx", static_cast<unsigned long long>(value));
}

}  // namespace

PmwareMobileService::PmwareMobileService(
    std::unique_ptr<sensing::Device> device, PmsConfig config,
    std::unique_ptr<net::RestClient> client, Rng rng)
    : config_(std::move(config)),
      device_(std::move(device)),
      meter_(config_.power),
      scheduler_(&meter_),
      apps_(&preferences_),
      engine_(device_.get(), &scheduler_, &place_store_, &apps_,
              config_.inference, rng.fork(1)),
      local_gca_(config_.inference.gca),
      client_(std::move(client)),
      instance_(telemetry::registry().next_instance_label("pms")),
      outbox_(config_.outbox) {
  if (config_.cache) gca_cache_.emplace(kGcaCacheName, 1);
  place_events_counter_.emplace(kPlaceEvents,
                                telemetry::LabelSet{{"instance", instance_}},
                                "place events delivered to connected apps");
  route_events_counter_.emplace(kRouteEvents,
                                telemetry::LabelSet{{"instance", instance_}},
                                "route events delivered to connected apps");
  encounters_counter_.emplace(kEncounters,
                              telemetry::LabelSet{{"instance", instance_}},
                              "encounter events delivered to connected apps");
  outbox_enqueued_counter_.emplace(
      kOutboxEnqueued, telemetry::LabelSet{{"instance", instance_}},
      "sync work items queued in the outbox");
  outbox_evicted_counter_.emplace(
      kOutboxEvicted, telemetry::LabelSet{{"instance", instance_}},
      "outbox entries dropped to capacity (oldest first)");
  outbox_delivered_counter_.emplace(
      kOutboxDelivered, telemetry::LabelSet{{"instance", instance_}},
      "outbox work items delivered to the cloud");
  outbox_recovered_counter_.emplace(
      kOutboxRecovered, telemetry::LabelSet{{"instance", instance_}},
      "outbox items delivered after one or more failed attempts");
  engine_.set_place_event_sink([this](const PlaceEvent& event) {
    std::size_t delivered =
        apps_.deliver_place_event(event, place_store_, bus_);
    delivered += apps_.deliver_geofence(event, place_store_, bus_);
    place_events_counter_->get().inc(delivered);
  });
  engine_.set_route_event_sink([this](const RouteEvent& event) {
    route_events_counter_->get().inc(apps_.deliver_route_event(event, bus_));
  });
  engine_.set_encounter_sink([this](const EncounterEvent& event) {
    encounters_counter_->get().inc(apps_.deliver_encounter(event, bus_));
  });
  engine_.set_gca_runner(
      [this](std::span<const algorithms::CellObservation> observations) {
        return offloaded_gca(observations, scheduler_.now());
      });
  engine_.attach();
}

telemetry::Counter& PmwareMobileService::counter(const char* name,
                                                 const char* help) const {
  return telemetry::registry().counter(name, {{"instance", instance_}}, help);
}

PmsStats PmwareMobileService::stats() const {
  const auto& reg = telemetry::registry();
  const telemetry::LabelSet labels = {{"instance", instance_}};
  PmsStats stats;
  stats.place_events_delivered = reg.counter_value(kPlaceEvents, labels);
  stats.route_events_delivered = reg.counter_value(kRouteEvents, labels);
  stats.encounters_delivered = reg.counter_value(kEncounters, labels);
  stats.profile_syncs = reg.counter_value(kProfileSyncs, labels);
  stats.token_refreshes = reg.counter_value(kTokenRefreshes, labels);
  stats.gca_offloads = reg.counter_value(kGcaOffloads, labels);
  stats.gca_local_runs = reg.counter_value(kGcaLocal, labels);
  for (const char* kind : kFailureKinds)
    stats.sync_failures += reg.counter_value(
        kSyncFailures, {{"instance", instance_}, {"kind", kind}});
  stats.outbox_enqueued = reg.counter_value(kOutboxEnqueued, labels);
  stats.outbox_delivered = reg.counter_value(kOutboxDelivered, labels);
  stats.outbox_recovered = reg.counter_value(kOutboxRecovered, labels);
  stats.outbox_evicted = reg.counter_value(kOutboxEvicted, labels);
  stats.outbox_dropped = reg.counter_value(kOutboxDropped, labels);
  stats.outbox_pending = outbox_.size();
  return stats;
}

net::HttpRequest PmwareMobileService::make_request(net::Method method,
                                                   std::string path,
                                                   SimTime now) const {
  net::HttpRequest request;
  request.method = method;
  request.path = std::move(path);
  request.headers["X-Sim-Time"] = std::to_string(now);
  // Stamp the registration session so the cloud can fence writes from
  // incarnations that predate a privacy wipe (tombstones, DESIGN.md
  // "Failure model & recovery").
  if (boot_epoch_ > 0)
    request.headers[net::kSessionHeader] = std::to_string(boot_epoch_);
  return request;
}

bool PmwareMobileService::register_with_cloud(SimTime now) {
  if (client_ == nullptr) return false;
  // Remember that the caller wants this device registered: if this attempt
  // fails (outage at study start), housekeeping keeps retrying — the
  // /api/register endpoint is idempotent on (imei, email).
  registration_wanted_ = true;
  net::HttpRequest request = make_request(net::Method::Post, "/api/register", now);
  request.body = Json::object();
  request.body.set("imei", config_.imei);
  request.body.set("email", config_.email);
  const net::HttpResponse response = client_->send(request);
  if (!response.ok()) {
    telemetry::slog_warn("pms", now, "registration failed: %d",
                         response.status);
    return false;
  }
  user_id_ = static_cast<world::DeviceId>(response.body.at("user").as_int());
  client_->set_auth_token(response.body.at("token").as_string());
  token_expires_ = response.body.at("expires_at").as_int();
  // The cloud counts registrations per device; that session number is this
  // incarnation's boot epoch (qualifies outbox replay sequence numbers,
  // keys wipe tombstones).
  boot_epoch_ =
      static_cast<std::uint64_t>(response.body.get_int("session", 0));
  telemetry::slog_info("pms", now, "registered as user %u", *user_id_);
  return true;
}

void PmwareMobileService::maybe_refresh_token(SimTime now) {
  if (client_ == nullptr || !user_id_) return;
  // Refresh once less than six hours of validity remain.
  if (token_expires_ - now >= hours(6)) return;
  net::HttpRequest request =
      make_request(net::Method::Post, "/api/token/refresh", now);
  const net::HttpResponse response = client_->send(request);
  if (response.ok()) {
    client_->set_auth_token(response.body.at("token").as_string());
    token_expires_ = response.body.at("expires_at").as_int();
    counter(kTokenRefreshes, "successful bearer-token refreshes").inc();
  } else {
    // Expired beyond refresh: re-register (idempotent on imei/email).
    register_with_cloud(now);
  }
}

algorithms::GcaResult PmwareMobileService::offloaded_gca(
    std::span<const algorithms::CellObservation> observations, SimTime now) {
  // Rolling movement digest: the GSM log is append-only, so extend the
  // digest over just the new observations instead of re-folding the whole
  // log every pass. A shrunk log (a different stream) resets the fold —
  // the same guard GcaState applies.
  if (observations.size() < digest_fed_) {
    digest_fed_ = 0;
    digest_ = cache::kDigestBasis;
    upload_acked_ = 0;
    upload_digest_ = cache::kDigestBasis;
  }
  for (std::size_t i = digest_fed_; i < observations.size(); ++i) {
    cache::fold(digest_, static_cast<std::uint64_t>(observations[i].t));
    cache::fold(digest_, observations[i].cell.key());
  }
  digest_fed_ = observations.size();
  const std::uint64_t graph_digest = digest_;

  // Content-addressed elision: an unchanged movement graph means an
  // identical clustering result (local, offloaded, or replayed — all equal
  // by design), so serve it from the cache without touching the wire.
  bool had_cached = false;
  if (gca_cache_) {
    auto found = gca_cache_->lookup(kGcaCacheKey, graph_digest);
    if (found.value) {
      gca_cache_->record(cache::CacheOutcome::LocalHit);
      return *std::move(found.value);
    }
    had_cached = found.stale;
  }
  if (config_.offload_gca && client_ != nullptr && user_id_) {
    telemetry::Span span(telemetry::tracer(), "pms.gca_offload", now);
    // Suffix upload: ship only what the cloud has not acknowledged, plus a
    // claim about the acknowledged prefix (length + rolling digest). The
    // cloud retains the stream, verifies the claim, and answers 409 when
    // the two sides disagree about history (e.g. a response was lost after
    // the cloud applied a suffix) — then this pass re-sends everything.
    auto build_request = [&](std::size_t from, bool with_prefix) {
      net::HttpRequest request =
          make_request(net::Method::Post, "/api/places/discover", now);
      Json arr = Json::array();
      for (std::size_t i = from; i < observations.size(); ++i) {
        Json o = Json::object();
        o.set("t", observations[i].t);
        o.set("cell", to_json(observations[i].cell));
        arr.push_back(std::move(o));
      }
      request.body = Json::object();
      request.body.set("observations", std::move(arr));
      if (with_prefix) {
        request.body.set("prefix_len", static_cast<std::int64_t>(from));
        request.body.set("prefix_digest", strfmt("%016llx",
            static_cast<unsigned long long>(upload_digest_)));
      }
      return request;
    };
    net::HttpResponse response =
        client_->send(build_request(upload_acked_, true));
    if (response.status == 409) {
      counter(kGcaResyncs,
              "GCA offloads that fell back to a full upload after the cloud "
              "rejected the suffix prefix claim")
          .inc();
      response = client_->send(build_request(0, false));
    }
    if (response.ok()) {
      upload_acked_ = observations.size();
      upload_digest_ = graph_digest;
      counter(kGcaOffloads, "GCA clustering passes offloaded to the cloud")
          .inc();
      algorithms::GcaResult result;
      for (const auto& p : response.body.at("places").as_array()) {
        const auto sig = signature_from_json(p.at("signature"));
        algorithms::CellCluster cluster;
        cluster.signature = std::get<algorithms::CellSignature>(sig);
        cluster.total_dwell = p.at("total_dwell").as_int();
        const std::size_t index = result.places.size();
        for (const auto& cell : cluster.signature.cells)
          result.cell_to_place[cell] = index;
        result.places.push_back(std::move(cluster));
      }
      for (const auto& v : response.body.at("visits").as_array()) {
        result.visits.push_back(
            {static_cast<std::size_t>(v.at("place").as_int()),
             TimeWindow{v.at("arrival").as_int(), v.at("departure").as_int()}});
      }
      // The cloud already recorded its own hit/recompute/miss for this
      // round trip; device-side we only remember the result.
      if (gca_cache_) gca_cache_->put(kGcaCacheKey, result, graph_digest);
      return result;
    }
    telemetry::slog_warn("pms", now, "GCA offload failed (%d); running locally",
                         response.status);
  }
  counter(kGcaLocal, "GCA clustering passes run on-device").inc();
  telemetry::Span span(telemetry::tracer(), "pms.gca_local", now);
  algorithms::GcaResult result = local_gca_.run(observations);
  if (gca_cache_) {
    // A failed offload never reached the cloud handler (client-side loss
    // and fault injection both fire before it), so recording the local
    // outcome here cannot double-count against the cloud's taxonomy.
    gca_cache_->record(had_cached ? cache::CacheOutcome::Recompute
                                  : cache::CacheOutcome::Miss);
    gca_cache_->put(kGcaCacheKey, result, graph_digest);
  }
  return result;
}

void PmwareMobileService::run(TimeWindow window) {
  telemetry::ScopedTimer run_span(telemetry::tracer(), "pms.run",
                                  [this] { return scheduler_.now(); });
  // Split at day boundaries so housekeeping runs between days.
  SimTime cursor = window.begin;
  while (cursor < window.end) {
    const SimTime day_end =
        std::min(window.end, start_of_day(day_of(cursor) + 1));
    scheduler_.run(TimeWindow{cursor, day_end});
    cursor = day_end;
    if (cursor < window.end || time_of_day(cursor) == 0)
      housekeeping(cursor);
  }
}

void PmwareMobileService::housekeeping(SimTime now) {
  // Sim time stands still during housekeeping — the span exists for its wall
  // cost and to parent the GCA offload/local spans opened underneath.
  telemetry::Span span(telemetry::tracer(), "pms.housekeeping", now);
  // A wanted-but-failed registration (outage at study start) retries here;
  // everything downstream needs the user id and token it produces.
  if (client_ != nullptr && registration_wanted_ && !user_id_)
    register_with_cloud(now);
  // Refresh credentials next: the recluster below may offload to the cloud.
  maybe_refresh_token(now);
  engine_.recluster(now);
  if (config_.cloud_sync && client_ != nullptr && user_id_) {
    const std::int64_t up_to = day_of(now) - (time_of_day(now) == 0 ? 1 : 0);
    enqueue_sync_work(up_to, now);
    drain_outbox(now);
  }
}

void PmwareMobileService::enqueue_sync_work(std::int64_t up_to, SimTime now) {
  // Dirty profile days. Each recluster can refine earlier days' visit logs,
  // so completed days are re-checked — but only days whose content digest
  // actually changed are re-PUT, not every day from 0 (the digests come
  // from one pass over the logs, so a steady-state tick costs O(logs),
  // not O(days * logs)).
  day_digest_cache_ = day_digests(up_to);
  for (std::int64_t day = 0; day <= up_to; ++day) {
    const auto& [digest, any] = day_digest_cache_[static_cast<std::size_t>(day)];
    if (!any) continue;  // empty profile: nothing to PUT (matches old skip)
    const auto it = synced_day_digest_.find(day);
    if (it != synced_day_digest_.end() && it->second == digest) continue;
    enqueue(SyncKind::ProfileDay, static_cast<std::uint64_t>(day), 0, now);
  }

  // Dirty place records (signatures may have shifted after recluster, the
  // user may have tagged a label). Dirtiness is the digest of the exact
  // body deliver() would PUT.
  for (const auto& [uid, record] : place_store_.records()) {
    PlaceRecord stripped = record;
    stripped.location.reset();
    const std::uint64_t digest = fnv1a(to_json(stripped).dump());
    const auto it = synced_place_digest_.find(uid);
    if (it != synced_place_digest_.end() && it->second == digest) continue;
    enqueue(SyncKind::PlaceUpsert, static_cast<std::uint64_t>(uid), 0, now);
  }

  // Journeys completed since the last tick; the log index doubles as the
  // replay sequence number the cloud dedups on.
  const auto& route_log = engine_.route_log();
  for (; routes_enqueued_ < route_log.size(); ++routes_enqueued_)
    enqueue(SyncKind::Route, static_cast<std::uint64_t>(routes_enqueued_), 0,
            now);

  // New social encounters, as one batch entry per drain backlog.
  const auto& encounter_log = engine_.encounter_log();
  if (encounters_enqueued_ < encounter_log.size()) {
    enqueue(SyncKind::EncounterBatch,
            static_cast<std::uint64_t>(encounters_enqueued_),
            static_cast<std::uint64_t>(encounter_log.size()), now);
    encounters_enqueued_ = encounter_log.size();
  }
}

void PmwareMobileService::enqueue(SyncKind kind, std::uint64_t key,
                                  std::uint64_t key2, SimTime now) {
  const SyncOutbox::EnqueueResult result =
      outbox_.enqueue(kind, key, key2, now, boot_epoch_);
  if (result.appended) outbox_enqueued_counter_->get().inc();
  if (result.evicted) {
    outbox_evicted_counter_->get().inc();
    // A dropped day/place re-detects as dirty next tick (its synced digest
    // was never updated); dropped routes/encounters are honest data loss.
    telemetry::slog_warn(
        "pms", now, "outbox full (%zu): evicted %s key=%llu queued at %lld",
        outbox_.config().capacity, kind_name(result.evicted->kind),
        static_cast<unsigned long long>(result.evicted->key),
        static_cast<long long>(result.evicted->enqueued_at));
  }
}

void PmwareMobileService::drain_outbox(SimTime now) {
  outbox_.drain([&](const OutboxEntry& entry) {
    switch (deliver(entry, now)) {
      case DeliverOutcome::Failed:
        record_sync_failure(entry.kind, 0, now);
        return false;
      case DeliverOutcome::Gone:
        // The cloud tombstoned this user (privacy wipe): replaying is
        // pointless and forbidden. Drop the entry and keep draining —
        // deliberate loss, accounted as dropped rather than delivered.
        counter(kOutboxDropped,
                "outbox entries discarded (crash/wipe teardown, tombstoned "
                "user)")
            .inc();
        telemetry::slog_warn(
            "pms", now, "%s sync rejected (user wiped); dropping entry",
            kind_name(entry.kind));
        return true;
      case DeliverOutcome::Delivered:
        break;
    }
    outbox_delivered_counter_->get().inc();
    if (entry.attempts > 0) outbox_recovered_counter_->get().inc();
    return true;
  });
  telemetry::registry()
      .gauge(kOutboxDepth, {{"instance", instance_}},
             "sync work items currently queued")
      .set(static_cast<double>(outbox_.size()));
}

PmwareMobileService::DeliverOutcome PmwareMobileService::deliver(
    const OutboxEntry& entry, SimTime now) {
  // Shared verdict for plain success/failure responses; 410 Gone is the
  // cloud's permanent "this user was wiped" refusal.
  const auto verdict = [](const net::HttpResponse& response) {
    if (response.ok()) return DeliverOutcome::Delivered;
    if (response.status == net::kStatusGone) return DeliverOutcome::Gone;
    return DeliverOutcome::Failed;
  };
  // Deliveries authenticate their *enqueue-time* session, not the current
  // boot's: an entry checkpointed before a privacy wipe replays with its old
  // session and is rejected by the cloud's wipe tombstone (410 -> dropped),
  // so restored state can never resurrect wiped data.
  const auto entry_request = [&](net::Method method, const std::string& path) {
    net::HttpRequest request = make_request(method, path, now);
    if (entry.epoch > 0)
      request.headers[net::kSessionHeader] = std::to_string(entry.epoch);
    return request;
  };
  switch (entry.kind) {
    case SyncKind::ProfileDay: {
      const auto day = static_cast<std::int64_t>(entry.key);
      const MobilityProfile profile = profile_for(day);
      if (profile.empty())
        return DeliverOutcome::Delivered;  // refined away since enqueue
      net::HttpRequest request = entry_request(
          net::Method::Put, strfmt("/api/users/%u/profiles/%lld", *user_id_,
                                   static_cast<long long>(day)));
      request.body = to_json(profile);
      const DeliverOutcome outcome = verdict(client_->send(request));
      if (outcome == DeliverOutcome::Gone &&
          static_cast<std::size_t>(day) < day_digest_cache_.size()) {
        // Honor the wipe: content the cloud refused under its pre-wipe
        // session must not be re-uploaded under the fresh one, so pin the
        // day's digest as synced. Only a genuinely new refinement of the
        // day (digest change) syncs again.
        synced_day_digest_[day] =
            day_digest_cache_[static_cast<std::size_t>(day)].first;
      }
      if (outcome != DeliverOutcome::Delivered) return outcome;
      counter(kProfileSyncs, "mobility-profile days synced to the cloud").inc();
      if (static_cast<std::size_t>(day) < day_digest_cache_.size())
        synced_day_digest_[day] =
            day_digest_cache_[static_cast<std::size_t>(day)].first;
      return DeliverOutcome::Delivered;
    }
    case SyncKind::PlaceUpsert: {
      const auto uid = static_cast<PlaceUid>(entry.key);
      const PlaceRecord* record = place_store_.get(uid);
      if (record == nullptr)
        return DeliverOutcome::Delivered;  // forgotten since enqueue
      // The body never carries the locally cached location: the cloud
      // resolves coordinates from the signature in the body on every PUT,
      // so cloud state is a pure function of the record content — a
      // replayed upsert after an outage converges to the same bytes as the
      // never-failed run (DESIGN.md "Failure model & recovery").
      PlaceRecord stripped = *record;
      stripped.location.reset();
      net::HttpRequest request = entry_request(
          net::Method::Put, strfmt("/api/users/%u/places/%llu", *user_id_,
                                   static_cast<unsigned long long>(uid)));
      request.body = to_json(stripped);
      const std::uint64_t digest = fnv1a(request.body.dump());
      const net::HttpResponse response = client_->send(request);
      if (const DeliverOutcome outcome = verdict(response);
          outcome != DeliverOutcome::Delivered) {
        // Same wipe-honoring pin as ProfileDay: a tombstoned upsert stays
        // "synced" so the fresh session never resurrects it.
        if (outcome == DeliverOutcome::Gone) synced_place_digest_[uid] = digest;
        return outcome;
      }
      // Cache the echoed resolution (geofencing and the map UI need
      // positions on-device) — from every echo, so the local view follows
      // the cloud's current resolution instead of pinning the first one.
      if (response.body.contains("location")) {
        if (PlaceRecord* mut = place_store_.get_mutable(uid))
          mut->location = latlng_from_json(response.body.at("location"));
      }
      synced_place_digest_[uid] = digest;
      return DeliverOutcome::Delivered;
    }
    case SyncKind::PlaceDelete: {
      const auto uid = static_cast<PlaceUid>(entry.key);
      const net::HttpResponse response = client_->send(entry_request(
          net::Method::Delete,
          strfmt("/api/users/%u/places/%llu", *user_id_,
                 static_cast<unsigned long long>(uid))));
      // 404 means an earlier attempt (or never-synced place) already left
      // the cloud without it: done.
      if (response.status == net::kStatusNotFound)
        return DeliverOutcome::Delivered;
      return verdict(response);
    }
    case SyncKind::Route: {
      const auto index = static_cast<std::size_t>(entry.key);
      const auto& route_log = engine_.route_log();
      if (index >= route_log.size()) return DeliverOutcome::Delivered;
      const RouteEvent& event = route_log[index];
      const auto& canonical = engine_.routes().routes();
      if (event.route_uid >= canonical.size())
        return DeliverOutcome::Delivered;  // not canonical
      const algorithms::RouteObservation& rep =
          canonical[event.route_uid].representative;
      net::HttpRequest request = entry_request(
          net::Method::Post, strfmt("/api/users/%u/routes", *user_id_));
      request.body = Json::object();
      // Replay guard: the cloud skips sequence numbers it already applied.
      // Qualified by the boot epoch the entry was enqueued under: a
      // checkpointed entry replayed after a crash keeps its original
      // sequence number (the cloud's high-water mark dedups a pre-crash
      // delivery), while the new incarnation's fresh log indices sit in a
      // strictly higher epoch and can never be wrongly deduplicated.
      request.body.set("seq", (entry.epoch << 32) | entry.key);
      request.body.set("from", static_cast<std::uint64_t>(event.from));
      request.body.set("to", static_cast<std::uint64_t>(event.to));
      request.body.set("start", event.window.begin);
      request.body.set("end", event.window.end);
      if (!rep.cells.cells.empty()) {
        Json cells = Json::array();
        for (std::size_t i = 0; i < rep.cells.cells.size(); ++i) {
          Json c = Json::object();
          c.set("t", rep.cells.times[i]);
          c.set("cell", to_json(rep.cells.cells[i]));
          cells.push_back(std::move(c));
        }
        request.body.set("cells", std::move(cells));
      }
      if (!rep.gps.points.empty()) {
        Json gps = Json::array();
        for (std::size_t i = 0; i < rep.gps.points.size(); ++i) {
          Json g = to_json(rep.gps.points[i]);
          g.set("t", rep.gps.times[i]);
          gps.push_back(std::move(g));
        }
        request.body.set("gps", std::move(gps));
      }
      return verdict(client_->send(request));
    }
    case SyncKind::EncounterBatch: {
      const auto& encounter_log = engine_.encounter_log();
      const std::size_t first = static_cast<std::size_t>(entry.key);
      const std::size_t last =
          std::min(static_cast<std::size_t>(entry.key2), encounter_log.size());
      if (first >= last) return DeliverOutcome::Delivered;
      net::HttpRequest request = entry_request(
          net::Method::Post, strfmt("/api/users/%u/contacts", *user_id_));
      Json encounters = Json::array();
      for (std::size_t i = first; i < last; ++i) {
        const EncounterEvent& event = encounter_log[i];
        Json e = Json::object();
        e.set("contact", static_cast<std::uint64_t>(event.contact));
        e.set("place", static_cast<std::uint64_t>(event.place));
        e.set("start", event.window.begin);
        e.set("end", event.window.end);
        encounters.push_back(std::move(e));
      }
      request.body = Json::object();
      // Replay guard: the cloud trims entries below its high-water mark.
      // Epoch-qualified like route sequence numbers; same-epoch ranges are
      // contiguous, so the cloud's trim arithmetic stays exact.
      request.body.set("first_index", (entry.epoch << 32) | entry.key);
      request.body.set("encounters", std::move(encounters));
      return verdict(client_->send(request));
    }
  }
  return DeliverOutcome::Delivered;
}

void PmwareMobileService::record_sync_failure(SyncKind kind, int status,
                                              SimTime now) {
  telemetry::registry()
      .counter(kSyncFailures,
               {{"instance", instance_}, {"kind", kind_name(kind)}},
               "sync sends that failed (parked in the outbox for replay)")
      .inc();
  telemetry::slog_warn("pms", now, "%s sync failed (status %d); outbox holds %zu",
                       kind_name(kind), status, outbox_.size());
}

std::vector<std::pair<std::uint64_t, bool>> PmwareMobileService::day_digests(
    std::int64_t up_to) const {
  std::vector<std::pair<std::uint64_t, bool>> digests(
      up_to < 0 ? 0 : static_cast<std::size_t>(up_to) + 1,
      {kDigestBasis, false});
  if (digests.empty()) return digests;
  // One pass over each log, folding every entry into the digests of the
  // days it contributes to — the same inclusion rules as profile_for():
  // visits clamp to the day and must meet the dwell minimum; routes and
  // encounters contribute their unclamped windows to every day they
  // overlap. Day windows are half-open, so an event's last touched day is
  // day_of(end - 1) — except zero-length windows, which overlaps() counts
  // on their single day.
  const auto touched_days = [&](const TimeWindow& w,
                                const auto& per_day) {
    const std::int64_t first = std::max<std::int64_t>(0, day_of(w.begin));
    const std::int64_t last =
        std::min(up_to, day_of(std::max(w.end - 1, w.begin)));
    for (std::int64_t day = first; day <= last; ++day)
      per_day(day, TimeWindow{start_of_day(day), start_of_day(day + 1)});
  };
  for (const auto& visit : engine_.visit_log()) {
    touched_days(visit.window, [&](std::int64_t day, const TimeWindow& dw) {
      if (visit.window.overlap_length(dw) < config_.inference.min_visit_dwell)
        return;
      auto& [h, any] = digests[static_cast<std::size_t>(day)];
      fold(h, 1);  // domain tag: visit
      fold(h, static_cast<std::uint64_t>(visit.uid));
      fold(h, static_cast<std::uint64_t>(std::max(visit.window.begin, dw.begin)));
      fold(h, static_cast<std::uint64_t>(std::min(visit.window.end, dw.end)));
      any = true;
    });
  }
  for (const auto& route : engine_.route_log()) {
    touched_days(route.window, [&](std::int64_t day, const TimeWindow& dw) {
      if (!route.window.overlaps(dw)) return;
      auto& [h, any] = digests[static_cast<std::size_t>(day)];
      fold(h, 2);  // domain tag: route
      fold(h, static_cast<std::uint64_t>(route.route_uid));
      fold(h, static_cast<std::uint64_t>(route.window.begin));
      fold(h, static_cast<std::uint64_t>(route.window.end));
      any = true;
    });
  }
  for (const auto& enc : engine_.encounter_log()) {
    touched_days(enc.window, [&](std::int64_t day, const TimeWindow& dw) {
      if (!enc.window.overlaps(dw)) return;
      auto& [h, any] = digests[static_cast<std::size_t>(day)];
      fold(h, 3);  // domain tag: encounter
      fold(h, static_cast<std::uint64_t>(enc.contact));
      fold(h, static_cast<std::uint64_t>(enc.place));
      fold(h, static_cast<std::uint64_t>(enc.window.begin));
      fold(h, static_cast<std::uint64_t>(enc.window.end));
      any = true;
    });
  }
  for (std::int64_t day = 0; day <= up_to; ++day) {
    const ActivitySummary activity = engine_.activity_for(day);
    if (activity.empty()) continue;
    auto& [h, any] = digests[static_cast<std::size_t>(day)];
    fold(h, 4);  // domain tag: activity
    fold(h, static_cast<std::uint64_t>(activity.still));
    fold(h, static_cast<std::uint64_t>(activity.walking));
    fold(h, static_cast<std::uint64_t>(activity.vehicle));
    any = true;
  }
  return digests;
}

MobilityProfile PmwareMobileService::profile_for(std::int64_t day) const {
  MobilityProfile profile;
  profile.user = user_id_.value_or(0);
  profile.day = day;
  const TimeWindow day_window{start_of_day(day), start_of_day(day + 1)};

  for (const auto& visit : engine_.visit_log()) {
    const SimDuration overlap = visit.window.overlap_length(day_window);
    if (overlap < config_.inference.min_visit_dwell) continue;
    profile.places.push_back(
        {visit.uid, std::max(visit.window.begin, day_window.begin),
         std::min(visit.window.end, day_window.end)});
  }
  for (const auto& route : engine_.route_log()) {
    if (!route.window.overlaps(day_window)) continue;
    profile.routes.push_back({route.route_uid, route.window.begin,
                              route.window.end});
  }
  for (const auto& enc : engine_.encounter_log()) {
    if (!enc.window.overlaps(day_window)) continue;
    profile.encounters.push_back({enc.contact, enc.place, enc.window.begin,
                                  enc.window.end});
  }
  profile.activity = engine_.activity_for(day);
  return profile;
}

bool PmwareMobileService::tag_place(PlaceUid uid, const std::string& label,
                                    SimTime now) {
  if (!place_store_.set_label(uid, label)) return false;
  if (client_ != nullptr && user_id_) {
    net::HttpRequest request = make_request(
        net::Method::Post,
        strfmt("/api/users/%u/places/%llu/label", *user_id_,
               static_cast<unsigned long long>(uid)),
        now);
    request.body = Json::object();
    request.body.set("label", label);
    const net::HttpResponse response = client_->send(request);
    if (!response.ok()) {
      // No outbox entry needed: the label rides the place record, whose
      // digest just changed — the next housekeeping tick re-upserts it.
      telemetry::registry()
          .counter(kSyncFailures,
                   {{"instance", instance_}, {"kind", kKindLabel}},
                   "sync sends that failed (parked in the outbox for replay)")
          .inc();
      telemetry::slog_warn("pms", now, "label sync for place %llu failed (%d)",
                           static_cast<unsigned long long>(uid),
                           response.status);
    }
  }
  return true;
}

bool PmwareMobileService::forget_place(PlaceUid uid, SimTime now) {
  if (place_store_.get(uid) == nullptr) return false;
  place_store_.erase(uid);
  engine_.forget_place(uid);
  // A queued upsert must not resurrect the place on replay, and the stale
  // digest must not suppress a future re-discovery's upsert.
  outbox_.remove(SyncKind::PlaceUpsert, static_cast<std::uint64_t>(uid));
  synced_place_digest_.erase(uid);
  if (client_ != nullptr && user_id_) {
    const net::HttpResponse response = client_->send(make_request(
        net::Method::Delete,
        strfmt("/api/users/%u/places/%llu", *user_id_,
               static_cast<unsigned long long>(uid)),
        now));
    // 410 Gone (wiped user) is permanent: queueing a retry would just be
    // dropped again at drain time.
    if (!response.ok() && response.status != net::kStatusNotFound &&
        response.status != net::kStatusGone) {
      record_sync_failure(SyncKind::PlaceDelete, response.status, now);
      enqueue(SyncKind::PlaceDelete, static_cast<std::uint64_t>(uid), 0, now);
    }
  }
  return true;
}

bool PmwareMobileService::wipe_cloud_data(SimTime now) {
  if (client_ == nullptr || !user_id_) return false;
  const net::HttpResponse response = client_->send(
      make_request(net::Method::Delete, strfmt("/api/users/%u", *user_id_), now));
  if (!response.ok()) {
    telemetry::registry()
        .counter(kSyncFailures, {{"instance", instance_}, {"kind", kKindWipe}},
                 "sync sends that failed (parked in the outbox for replay)")
        .inc();
    telemetry::slog_warn("pms", now, "cloud wipe failed (%d)", response.status);
  }
  return response.ok();
}

void PmwareMobileService::save(std::ostream& out) const {
  std::ostringstream body;
  const auto emit_section = [&body](const char* name,
                                    const std::string& payload) {
    std::size_t lines = 0;
    for (const char c : payload) lines += (c == '\n');
    Json header = Json::object();
    header.set("section", name);
    header.set("lines", static_cast<std::int64_t>(lines));
    body << header.dump() << '\n' << payload;
  };

  {
    Json j = Json::object();
    j.set("registration_wanted", registration_wanted_);
    j.set("next_uid", place_store_.next_uid());
    j.set("routes_enqueued", static_cast<std::uint64_t>(routes_enqueued_));
    j.set("encounters_enqueued",
          static_cast<std::uint64_t>(encounters_enqueued_));
    // Suffix-upload state: the cloud retained this device's GSM stream, so
    // the restored incarnation can keep shipping suffixes. If the cloud saw
    // more than the checkpoint remembers (a pre-crash offload), the prefix
    // claim fails, the next pass answers 409, and a full upload re-syncs —
    // self-healing, never silently wrong.
    j.set("digest_fed", static_cast<std::uint64_t>(digest_fed_));
    j.set("digest", hex64(digest_));
    j.set("upload_acked", static_cast<std::uint64_t>(upload_acked_));
    j.set("upload_digest", hex64(upload_digest_));
    emit_section("scalars", j.dump() + "\n");
  }
  {
    Json j = Json::object();
    j.set("sharing_enabled", preferences_.sharing_enabled());
    Json caps = Json::array();
    for (const auto& [app, cap] : preferences_.caps()) {
      Json c = Json::object();
      c.set("app", app);
      c.set("cap", static_cast<std::int64_t>(cap));
      caps.push_back(std::move(c));
    }
    j.set("caps", std::move(caps));
    emit_section("preferences", j.dump() + "\n");
  }
  {
    std::ostringstream s;
    write_gsm_log(s, engine_.gsm_log());
    emit_section("gsm_log", s.str());
  }
  {
    std::ostringstream s;
    write_visit_log(s, engine_.visit_log());
    emit_section("visit_log", s.str());
  }
  {
    std::ostringstream s;
    write_place_records(s, place_store_);
    emit_section("places", s.str());
  }
  {
    // Day profiles are a derived export (recomputed from the logs above),
    // checkpointed so the on-disk artifact is a complete account of the
    // device; restore() validates and discards them.
    std::int64_t last_day = -1;
    const auto bump = [&last_day](const TimeWindow& w) {
      last_day = std::max(last_day, day_of(std::max(w.end - 1, w.begin)));
    };
    for (const auto& visit : engine_.visit_log()) bump(visit.window);
    for (const auto& route : engine_.route_log()) bump(route.window);
    for (const auto& enc : engine_.encounter_log()) bump(enc.window);
    if (!engine_.activity_log().empty())
      last_day = std::max(last_day, engine_.activity_log().rbegin()->first);
    std::vector<MobilityProfile> profiles;
    for (std::int64_t day = 0; day <= last_day; ++day) {
      MobilityProfile profile = profile_for(day);
      if (!profile.empty()) profiles.push_back(std::move(profile));
    }
    std::ostringstream s;
    write_profiles(s, profiles);
    emit_section("profiles", s.str());
  }
  {
    std::ostringstream s;
    for (const auto& event : engine_.route_log()) {
      Json j = Json::object();
      j.set("route_uid", event.route_uid);
      j.set("from", event.from);
      j.set("to", event.to);
      j.set("start", event.window.begin);
      j.set("end", event.window.end);
      j.set("high_accuracy", event.high_accuracy);
      s << j.dump() << '\n';
    }
    emit_section("route_log", s.str());
  }
  {
    std::ostringstream s;
    for (const auto& route : engine_.routes().routes()) {
      const algorithms::RouteObservation& rep = route.representative;
      Json j = Json::object();
      j.set("use_count", static_cast<std::uint64_t>(route.use_count));
      j.set("from", static_cast<std::uint64_t>(rep.from_place));
      j.set("to", static_cast<std::uint64_t>(rep.to_place));
      j.set("start", rep.window.begin);
      j.set("end", rep.window.end);
      if (!rep.cells.cells.empty()) {
        Json cells = Json::array();
        for (std::size_t i = 0; i < rep.cells.cells.size(); ++i) {
          Json c = Json::object();
          c.set("t", rep.cells.times[i]);
          c.set("cell", to_json(rep.cells.cells[i]));
          cells.push_back(std::move(c));
        }
        j.set("cells", std::move(cells));
      }
      if (!rep.gps.points.empty()) {
        Json gps = Json::array();
        for (std::size_t i = 0; i < rep.gps.points.size(); ++i) {
          Json g = to_json(rep.gps.points[i]);
          g.set("t", rep.gps.times[i]);
          gps.push_back(std::move(g));
        }
        j.set("gps", std::move(gps));
      }
      s << j.dump() << '\n';
    }
    emit_section("route_store", s.str());
  }
  {
    std::ostringstream s;
    for (const auto& enc : engine_.encounter_log()) {
      Json j = Json::object();
      j.set("contact", static_cast<std::uint64_t>(enc.contact));
      j.set("place", enc.place);
      j.set("start", enc.window.begin);
      j.set("end", enc.window.end);
      s << j.dump() << '\n';
    }
    emit_section("encounters", s.str());
  }
  {
    std::ostringstream s;
    for (const auto& [day, summary] : engine_.activity_log()) {
      Json j = Json::object();
      j.set("day", day);
      j.set("still", summary.still);
      j.set("walking", summary.walking);
      j.set("vehicle", summary.vehicle);
      s << j.dump() << '\n';
    }
    emit_section("activity", s.str());
  }
  {
    std::ostringstream s;
    outbox_.save(s);
    emit_section("outbox", s.str());
  }
  {
    std::ostringstream s;
    for (const auto& [day, digest] : synced_day_digest_) {
      Json j = Json::object();
      j.set("day", day);
      j.set("digest", hex64(digest));
      s << j.dump() << '\n';
    }
    emit_section("synced_days", s.str());
  }
  {
    std::ostringstream s;
    for (const auto& [uid, digest] : synced_place_digest_) {
      Json j = Json::object();
      j.set("uid", uid);
      j.set("digest", hex64(digest));
      s << j.dump() << '\n';
    }
    emit_section("synced_places", s.str());
  }

  const std::string payload = body.str();
  std::size_t total_lines = 0;
  for (const char c : payload) total_lines += (c == '\n');
  Json manifest = Json::object();
  manifest.set("format", kCheckpointFormat);
  manifest.set("version", kCheckpointVersion);
  manifest.set("lines", static_cast<std::int64_t>(total_lines));
  manifest.set("digest", hex64(fnv1a(payload)));
  const std::string head = manifest.dump();
  out << head << '\n' << payload;
  telemetry::registry()
      .histogram(kCheckpointBytes, {}, 0, 1 << 20, 64,
                 "serialized PMS checkpoint size in bytes")
      .observe(static_cast<double>(head.size() + 1 + payload.size()));
}

bool PmwareMobileService::restore(std::istream& in) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::string line;
  if (!std::getline(in, line)) return false;
  std::size_t expected_lines = 0;
  std::uint64_t expected_digest = 0;
  try {
    const Json manifest = Json::parse(line);
    if (manifest.get_string("format", "") != kCheckpointFormat) return false;
    if (manifest.get_int("version", 0) != kCheckpointVersion) return false;
    const std::int64_t lines = manifest.get_int("lines", -1);
    if (lines < 0) return false;
    expected_lines = static_cast<std::size_t>(lines);
    expected_digest = parse_hex64(manifest.get_string("digest", ""));
  } catch (const JsonError&) {
    return false;
  }
  // A short read (torn checkpoint) or a digest mismatch (bit rot, a torn
  // final line) both fail before anything is touched.
  std::vector<std::string> lines;
  lines.reserve(expected_lines);
  std::string payload;
  while (lines.size() < expected_lines && std::getline(in, line)) {
    payload += line;
    payload += '\n';
    lines.push_back(std::move(line));
  }
  if (lines.size() < expected_lines) return false;
  // save() always terminates the body with a newline; getline() would
  // happily heal a checkpoint whose final '\n' was torn off (the rebuilt
  // payload is byte-identical), so the missing delimiter itself — eofbit
  // raised mid-line — is the truncation signal.
  if (expected_lines > 0 && in.eof()) return false;
  if (fnv1a(payload) != expected_digest) return false;

  // Parse every section into temporaries; nothing below commits until all
  // of them decoded.
  InferenceEngine::LogSnapshot snapshot;
  std::vector<PlaceRecord> places;
  PlaceUid next_uid = 1;
  bool wanted = false;
  std::size_t routes_enqueued = 0;
  std::size_t encounters_enqueued = 0;
  std::size_t digest_fed = 0;
  std::uint64_t digest = kDigestBasis;
  std::size_t upload_acked = 0;
  std::uint64_t upload_digest = kDigestBasis;
  bool sharing = true;
  std::vector<std::pair<std::string, Granularity>> caps;
  SyncOutbox staged_outbox(config_.outbox);
  SyncOutbox::LoadResult outbox_result;
  std::map<std::int64_t, std::uint64_t> synced_days;
  std::map<PlaceUid, std::uint64_t> synced_places;
  try {
    std::size_t i = 0;
    while (i < lines.size()) {
      const Json header = Json::parse(lines[i++]);
      const std::string name = header.get_string("section", "");
      const std::int64_t declared = header.get_int("lines", -1);
      if (declared < 0 ||
          static_cast<std::size_t>(declared) > lines.size() - i)
        return false;
      const std::size_t count = static_cast<std::size_t>(declared);
      std::string chunk;
      for (std::size_t k = 0; k < count; ++k) {
        chunk += lines[i + k];
        chunk += '\n';
      }
      i += count;
      std::istringstream section(chunk);
      if (name == "scalars") {
        const Json j = Json::parse(lines[i - count]);
        wanted = j.get_bool("registration_wanted", false);
        next_uid = static_cast<PlaceUid>(j.get_int("next_uid", 1));
        routes_enqueued =
            static_cast<std::size_t>(j.get_int("routes_enqueued", 0));
        encounters_enqueued =
            static_cast<std::size_t>(j.get_int("encounters_enqueued", 0));
        digest_fed = static_cast<std::size_t>(j.get_int("digest_fed", 0));
        digest = parse_hex64(j.get_string("digest", "cbf29ce484222325"));
        upload_acked =
            static_cast<std::size_t>(j.get_int("upload_acked", 0));
        upload_digest =
            parse_hex64(j.get_string("upload_digest", "cbf29ce484222325"));
      } else if (name == "preferences") {
        const Json j = Json::parse(lines[i - count]);
        sharing = j.get_bool("sharing_enabled", true);
        if (j.contains("caps")) {
          for (const auto& c : j.at("caps").as_array())
            caps.emplace_back(
                c.at("app").as_string(),
                static_cast<Granularity>(c.at("cap").as_int()));
        }
      } else if (name == "gsm_log") {
        snapshot.gsm_log = read_gsm_log(section);
      } else if (name == "visit_log") {
        snapshot.visit_log = read_visit_log(section);
      } else if (name == "places") {
        places = read_place_records(section);
      } else if (name == "profiles") {
        read_profiles(section);  // derived product: validate and discard
      } else if (name == "route_log") {
        for (std::size_t k = 0; k < count; ++k) {
          const Json j = Json::parse(lines[i - count + k]);
          RouteEvent event;
          event.route_uid =
              static_cast<std::uint64_t>(j.get_int("route_uid", 0));
          event.from = static_cast<PlaceUid>(j.get_int("from", 0));
          event.to = static_cast<PlaceUid>(j.get_int("to", 0));
          event.window =
              TimeWindow{j.get_int("start", 0), j.get_int("end", 0)};
          event.high_accuracy = j.get_bool("high_accuracy", false);
          snapshot.route_log.push_back(event);
        }
      } else if (name == "route_store") {
        for (std::size_t k = 0; k < count; ++k) {
          const Json j = Json::parse(lines[i - count + k]);
          algorithms::CanonicalRoute route;
          route.use_count =
              static_cast<std::size_t>(j.get_int("use_count", 1));
          algorithms::RouteObservation& rep = route.representative;
          rep.from_place = static_cast<std::size_t>(j.get_int("from", 0));
          rep.to_place = static_cast<std::size_t>(j.get_int("to", 0));
          rep.window = TimeWindow{j.get_int("start", 0), j.get_int("end", 0)};
          if (j.contains("cells")) {
            for (const auto& c : j.at("cells").as_array()) {
              rep.cells.times.push_back(c.at("t").as_int());
              rep.cells.cells.push_back(cell_from_json(c.at("cell")));
            }
          }
          if (j.contains("gps")) {
            for (const auto& g : j.at("gps").as_array()) {
              rep.gps.times.push_back(g.at("t").as_int());
              rep.gps.points.push_back(latlng_from_json(g));
            }
          }
          snapshot.routes.push_back(std::move(route));
        }
      } else if (name == "encounters") {
        for (std::size_t k = 0; k < count; ++k) {
          const Json j = Json::parse(lines[i - count + k]);
          EncounterEvent event;
          event.contact =
              static_cast<world::DeviceId>(j.get_int("contact", 0));
          event.place = static_cast<PlaceUid>(j.get_int("place", 0));
          event.window =
              TimeWindow{j.get_int("start", 0), j.get_int("end", 0)};
          snapshot.encounter_log.push_back(event);
        }
      } else if (name == "activity") {
        for (std::size_t k = 0; k < count; ++k) {
          const Json j = Json::parse(lines[i - count + k]);
          ActivitySummary summary;
          summary.still = j.get_int("still", 0);
          summary.walking = j.get_int("walking", 0);
          summary.vehicle = j.get_int("vehicle", 0);
          snapshot.activity_by_day[j.get_int("day", 0)] = summary;
        }
      } else if (name == "outbox") {
        outbox_result = staged_outbox.load(section);
      } else if (name == "synced_days") {
        for (std::size_t k = 0; k < count; ++k) {
          const Json j = Json::parse(lines[i - count + k]);
          synced_days[j.get_int("day", 0)] =
              parse_hex64(j.get_string("digest", "0"));
        }
      } else if (name == "synced_places") {
        for (std::size_t k = 0; k < count; ++k) {
          const Json j = Json::parse(lines[i - count + k]);
          synced_places[static_cast<PlaceUid>(j.get_int("uid", 0))] =
              parse_hex64(j.get_string("digest", "0"));
        }
      }
      // Unknown sections skip silently (forward compatibility).
    }
  } catch (const JsonError&) {
    return false;
  } catch (const PersistenceError&) {
    return false;
  }

  // Commit. Credentials are deliberately NOT restored: the caller must
  // re-register, which also assigns this incarnation a fresh boot epoch —
  // restored outbox entries keep the epoch they were enqueued under.
  engine_.restore_logs(std::move(snapshot));
  place_store_.restore(std::move(places), next_uid);
  preferences_.set_sharing_enabled(sharing);
  for (const auto& [app, cap] : caps) preferences_.set_app_cap(app, cap);
  outbox_ = std::move(staged_outbox);
  // Restored entries re-enter this incarnation's books so the study-level
  // balance (enqueued = delivered + evicted + dropped + pending) holds.
  if (outbox_result.loaded > 0)
    outbox_enqueued_counter_->get().inc(outbox_result.loaded);
  if (outbox_result.evicted > 0)
    outbox_evicted_counter_->get().inc(outbox_result.evicted);
  registration_wanted_ = wanted;
  user_id_.reset();
  token_expires_ = 0;
  boot_epoch_ = 0;
  routes_enqueued_ = routes_enqueued;
  encounters_enqueued_ = encounters_enqueued;
  digest_fed_ = digest_fed;
  digest_ = digest;
  upload_acked_ = upload_acked;
  upload_digest_ = upload_digest;
  synced_day_digest_ = std::move(synced_days);
  synced_place_digest_ = std::move(synced_places);
  day_digest_cache_.clear();

  telemetry::registry()
      .counter(kRestarts, {{"instance", instance_}, {"mode", "warm"}},
               "PMS reboots by recovery mode (warm = from checkpoint, cold = "
               "rebuilt from cloud)")
      .inc();
  const double wall_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  telemetry::registry()
      .histogram(kRestoreWall, {}, 0, 100000, 64,
                 "checkpoint restore wall time in microseconds")
      .observe(wall_us);
  return true;
}

bool PmwareMobileService::cold_restart(SimTime now) {
  if (client_ == nullptr) return false;
  if (!register_with_cloud(now)) return false;
  const net::HttpResponse response = client_->send(make_request(
      net::Method::Get, strfmt("/api/users/%u/places", *user_id_), now));
  if (response.ok()) {
    std::vector<PlaceRecord> records;
    try {
      for (const auto& p : response.body.at("places").as_array())
        records.push_back(place_record_from_json(p));
    } catch (const JsonError&) {
      records.clear();
    }
    // These records ARE the cloud's current content: seed the sync marks so
    // re-upserting them verbatim is skipped, and restore with uid
    // continuity so re-discovered signatures converge on their old uids.
    for (const auto& record : records) {
      PlaceRecord stripped = record;
      stripped.location.reset();
      synced_place_digest_[record.uid] = fnv1a(to_json(stripped).dump());
    }
    place_store_.restore(std::move(records), 1);
  } else {
    // The cloud's uid range is unknown (outage mid-recovery): park this
    // incarnation's discoveries in a per-epoch uid namespace so they can
    // never overwrite the cloud's retained records.
    place_store_.restore(
        {}, std::max<PlaceUid>(1, static_cast<PlaceUid>(boot_epoch_) << 20));
  }
  // Profile days stay cloud-side: local logs are empty and empty days are
  // never re-uploaded, so the cloud's retained profiles survive untouched.
  // Count how many it kept for us.
  std::size_t recovered = 0;
  for (std::int64_t day = 0; day < day_of(now); ++day) {
    if (client_
            ->send(make_request(
                net::Method::Get,
                strfmt("/api/users/%u/profiles/%lld", *user_id_,
                       static_cast<long long>(day)),
                now))
            .ok())
      ++recovered;
  }
  if (recovered > 0)
    counter(kColdProfileDays,
            "profile days found retained on the cloud during cold restarts")
        .inc(recovered);
  telemetry::registry()
      .counter(kRestarts, {{"instance", instance_}, {"mode", "cold"}},
               "PMS reboots by recovery mode (warm = from checkpoint, cold = "
               "rebuilt from cloud)")
      .inc();
  return true;
}

std::size_t PmwareMobileService::discard_pending() {
  const std::size_t dropped = outbox_.size();
  if (dropped > 0)
    counter(kOutboxDropped,
            "outbox entries discarded (crash/wipe teardown, tombstoned user)")
        .inc(dropped);
  return dropped;
}

void PmwareMobileService::shutdown(SimTime now) {
  engine_.flush(now);
  housekeeping(now);
  if (config_.cloud_sync && client_ != nullptr && user_id_) {
    // The final day may be partial (housekeeping above only covered
    // completed days); queue it plus anything still parked, and drain.
    enqueue_sync_work(day_of(now), now);
    drain_outbox(now);
  }
}

}  // namespace pmware::core
