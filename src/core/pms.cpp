#include "core/pms.hpp"

#include <algorithm>

#include "core/codec.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/log.hpp"
#include "util/strfmt.hpp"

namespace pmware::core {

namespace {

constexpr const char* kPlaceEvents = "pms_place_events_total";
constexpr const char* kRouteEvents = "pms_route_events_total";
constexpr const char* kEncounters = "pms_encounters_total";
constexpr const char* kProfileSyncs = "pms_profile_syncs_total";
constexpr const char* kTokenRefreshes = "pms_token_refreshes_total";
constexpr const char* kGcaOffloads = "pms_gca_offloads_total";
constexpr const char* kGcaLocal = "pms_gca_local_total";

}  // namespace

PmwareMobileService::PmwareMobileService(
    std::unique_ptr<sensing::Device> device, PmsConfig config,
    std::unique_ptr<net::RestClient> client, Rng rng)
    : config_(std::move(config)),
      device_(std::move(device)),
      meter_(config_.power),
      scheduler_(&meter_),
      apps_(&preferences_),
      engine_(device_.get(), &scheduler_, &place_store_, &apps_,
              config_.inference, rng.fork(1)),
      local_gca_(config_.inference.gca),
      client_(std::move(client)),
      instance_(telemetry::registry().next_instance_label("pms")) {
  engine_.set_place_event_sink([this](const PlaceEvent& event) {
    std::size_t delivered =
        apps_.deliver_place_event(event, place_store_, bus_);
    delivered += apps_.deliver_geofence(event, place_store_, bus_);
    counter(kPlaceEvents, "place events delivered to connected apps")
        .inc(delivered);
  });
  engine_.set_route_event_sink([this](const RouteEvent& event) {
    counter(kRouteEvents, "route events delivered to connected apps")
        .inc(apps_.deliver_route_event(event, bus_));
  });
  engine_.set_encounter_sink([this](const EncounterEvent& event) {
    counter(kEncounters, "encounter events delivered to connected apps")
        .inc(apps_.deliver_encounter(event, bus_));
  });
  engine_.set_gca_runner(
      [this](std::span<const algorithms::CellObservation> observations) {
        return offloaded_gca(observations, scheduler_.now());
      });
  engine_.attach();
}

telemetry::Counter& PmwareMobileService::counter(const char* name,
                                                 const char* help) const {
  return telemetry::registry().counter(name, {{"instance", instance_}}, help);
}

PmsStats PmwareMobileService::stats() const {
  const auto& reg = telemetry::registry();
  const telemetry::LabelSet labels = {{"instance", instance_}};
  PmsStats stats;
  stats.place_events_delivered = reg.counter_value(kPlaceEvents, labels);
  stats.route_events_delivered = reg.counter_value(kRouteEvents, labels);
  stats.encounters_delivered = reg.counter_value(kEncounters, labels);
  stats.profile_syncs = reg.counter_value(kProfileSyncs, labels);
  stats.token_refreshes = reg.counter_value(kTokenRefreshes, labels);
  stats.gca_offloads = reg.counter_value(kGcaOffloads, labels);
  stats.gca_local_runs = reg.counter_value(kGcaLocal, labels);
  return stats;
}

net::HttpRequest PmwareMobileService::make_request(net::Method method,
                                                   std::string path,
                                                   SimTime now) const {
  net::HttpRequest request;
  request.method = method;
  request.path = std::move(path);
  request.headers["X-Sim-Time"] = std::to_string(now);
  return request;
}

bool PmwareMobileService::register_with_cloud(SimTime now) {
  if (client_ == nullptr) return false;
  net::HttpRequest request = make_request(net::Method::Post, "/api/register", now);
  request.body = Json::object();
  request.body.set("imei", config_.imei);
  request.body.set("email", config_.email);
  const net::HttpResponse response = client_->send(request);
  if (!response.ok()) {
    telemetry::slog_warn("pms", now, "registration failed: %d",
                         response.status);
    return false;
  }
  user_id_ = static_cast<world::DeviceId>(response.body.at("user").as_int());
  client_->set_auth_token(response.body.at("token").as_string());
  token_expires_ = response.body.at("expires_at").as_int();
  telemetry::slog_info("pms", now, "registered as user %u", *user_id_);
  return true;
}

void PmwareMobileService::maybe_refresh_token(SimTime now) {
  if (client_ == nullptr || !user_id_) return;
  // Refresh once less than six hours of validity remain.
  if (token_expires_ - now >= hours(6)) return;
  net::HttpRequest request =
      make_request(net::Method::Post, "/api/token/refresh", now);
  const net::HttpResponse response = client_->send(request);
  if (response.ok()) {
    client_->set_auth_token(response.body.at("token").as_string());
    token_expires_ = response.body.at("expires_at").as_int();
    counter(kTokenRefreshes, "successful bearer-token refreshes").inc();
  } else {
    // Expired beyond refresh: re-register (idempotent on imei/email).
    register_with_cloud(now);
  }
}

algorithms::GcaResult PmwareMobileService::offloaded_gca(
    std::span<const algorithms::CellObservation> observations, SimTime now) {
  if (config_.offload_gca && client_ != nullptr && user_id_) {
    telemetry::Span span(telemetry::tracer(), "pms.gca_offload", now);
    net::HttpRequest request =
        make_request(net::Method::Post, "/api/places/discover", now);
    Json arr = Json::array();
    for (const auto& obs : observations) {
      Json o = Json::object();
      o.set("t", obs.t);
      o.set("cell", to_json(obs.cell));
      arr.push_back(std::move(o));
    }
    request.body = Json::object();
    request.body.set("observations", std::move(arr));
    const net::HttpResponse response = client_->send(request);
    if (response.ok()) {
      counter(kGcaOffloads, "GCA clustering passes offloaded to the cloud")
          .inc();
      algorithms::GcaResult result;
      for (const auto& p : response.body.at("places").as_array()) {
        const auto sig = signature_from_json(p.at("signature"));
        algorithms::CellCluster cluster;
        cluster.signature = std::get<algorithms::CellSignature>(sig);
        cluster.total_dwell = p.at("total_dwell").as_int();
        const std::size_t index = result.places.size();
        for (const auto& cell : cluster.signature.cells)
          result.cell_to_place[cell] = index;
        result.places.push_back(std::move(cluster));
      }
      for (const auto& v : response.body.at("visits").as_array()) {
        result.visits.push_back(
            {static_cast<std::size_t>(v.at("place").as_int()),
             TimeWindow{v.at("arrival").as_int(), v.at("departure").as_int()}});
      }
      return result;
    }
    telemetry::slog_warn("pms", now, "GCA offload failed (%d); running locally",
                         response.status);
  }
  counter(kGcaLocal, "GCA clustering passes run on-device").inc();
  telemetry::Span span(telemetry::tracer(), "pms.gca_local", now);
  return local_gca_.run(observations);
}

void PmwareMobileService::run(TimeWindow window) {
  telemetry::ScopedTimer run_span(telemetry::tracer(), "pms.run",
                                  [this] { return scheduler_.now(); });
  // Split at day boundaries so housekeeping runs between days.
  SimTime cursor = window.begin;
  while (cursor < window.end) {
    const SimTime day_end =
        std::min(window.end, start_of_day(day_of(cursor) + 1));
    scheduler_.run(TimeWindow{cursor, day_end});
    cursor = day_end;
    if (cursor < window.end || time_of_day(cursor) == 0)
      housekeeping(cursor);
  }
}

void PmwareMobileService::housekeeping(SimTime now) {
  // Sim time stands still during housekeeping — the span exists for its wall
  // cost and to parent the GCA offload/local spans opened underneath.
  telemetry::Span span(telemetry::tracer(), "pms.housekeeping", now);
  // Refresh credentials first: the recluster below may offload to the cloud.
  maybe_refresh_token(now);
  engine_.recluster(now);
  if (config_.cloud_sync && client_ != nullptr && user_id_) {
    // Sync every completed day. Days already synced are re-PUT because each
    // recluster can refine earlier days' visit logs; the PUT is idempotent.
    const std::int64_t up_to = day_of(now) - (time_of_day(now) == 0 ? 1 : 0);
    for (std::int64_t day = 0; day <= up_to; ++day) sync_day(day, now);

    // Sync place records (signatures may have shifted after recluster).
    // The cloud resolves approximate coordinates via its geo-location
    // service and echoes them back; cache them locally — geofencing and the
    // map UI need positions on-device.
    std::vector<std::pair<PlaceUid, geo::LatLng>> resolved;
    for (const auto& [uid, record] : place_store_.records()) {
      net::HttpRequest request = make_request(
          net::Method::Put,
          strfmt("/api/users/%u/places/%llu", *user_id_,
                 static_cast<unsigned long long>(uid)),
          now);
      request.body = to_json(record);
      const net::HttpResponse response = client_->send(request);
      if (response.ok() && response.body.contains("location") &&
          !record.location)
        resolved.emplace_back(uid,
                              latlng_from_json(response.body.at("location")));
    }
    for (const auto& [uid, location] : resolved) {
      if (PlaceRecord* record = place_store_.get_mutable(uid))
        record->location = location;
    }

    // Upload journeys completed since the last sync; the cloud's route
    // store deduplicates repeats into canonical routes (paper §2.3.3).
    const auto& route_log = engine_.route_log();
    for (; routes_synced_ < route_log.size(); ++routes_synced_) {
      const RouteEvent& event = route_log[routes_synced_];
      const auto& canonical = engine_.routes().routes();
      if (event.route_uid >= canonical.size()) continue;
      const algorithms::RouteObservation& rep =
          canonical[event.route_uid].representative;
      net::HttpRequest request = make_request(
          net::Method::Post, strfmt("/api/users/%u/routes", *user_id_), now);
      request.body = Json::object();
      request.body.set("from", static_cast<std::uint64_t>(event.from));
      request.body.set("to", static_cast<std::uint64_t>(event.to));
      request.body.set("start", event.window.begin);
      request.body.set("end", event.window.end);
      if (!rep.cells.cells.empty()) {
        Json cells = Json::array();
        for (std::size_t i = 0; i < rep.cells.cells.size(); ++i) {
          Json c = Json::object();
          c.set("t", rep.cells.times[i]);
          c.set("cell", to_json(rep.cells.cells[i]));
          cells.push_back(std::move(c));
        }
        request.body.set("cells", std::move(cells));
      }
      if (!rep.gps.points.empty()) {
        Json gps = Json::array();
        for (std::size_t i = 0; i < rep.gps.points.size(); ++i) {
          Json g = to_json(rep.gps.points[i]);
          g.set("t", rep.gps.times[i]);
          gps.push_back(std::move(g));
        }
        request.body.set("gps", std::move(gps));
      }
      client_->send(request);
    }

    // Upload new social encounters to the contacts endpoint.
    const auto& encounter_log = engine_.encounter_log();
    if (encounters_synced_ < encounter_log.size()) {
      net::HttpRequest request = make_request(
          net::Method::Post, strfmt("/api/users/%u/contacts", *user_id_), now);
      Json encounters = Json::array();
      for (; encounters_synced_ < encounter_log.size(); ++encounters_synced_) {
        const EncounterEvent& event = encounter_log[encounters_synced_];
        Json e = Json::object();
        e.set("contact", static_cast<std::uint64_t>(event.contact));
        e.set("place", static_cast<std::uint64_t>(event.place));
        e.set("start", event.window.begin);
        e.set("end", event.window.end);
        encounters.push_back(std::move(e));
      }
      request.body = Json::object();
      request.body.set("encounters", std::move(encounters));
      client_->send(request);
    }
  }
}

void PmwareMobileService::sync_day(std::int64_t day, SimTime now) {
  const MobilityProfile profile = profile_for(day);
  if (profile.empty()) return;
  net::HttpRequest request = make_request(
      net::Method::Put,
      strfmt("/api/users/%u/profiles/%lld", *user_id_,
             static_cast<long long>(day)),
      now);
  request.body = to_json(profile);
  if (client_->send(request).ok())
    counter(kProfileSyncs, "mobility-profile days synced to the cloud").inc();
}

MobilityProfile PmwareMobileService::profile_for(std::int64_t day) const {
  MobilityProfile profile;
  profile.user = user_id_.value_or(0);
  profile.day = day;
  const TimeWindow day_window{start_of_day(day), start_of_day(day + 1)};

  for (const auto& visit : engine_.visit_log()) {
    const SimDuration overlap = visit.window.overlap_length(day_window);
    if (overlap < config_.inference.min_visit_dwell) continue;
    profile.places.push_back(
        {visit.uid, std::max(visit.window.begin, day_window.begin),
         std::min(visit.window.end, day_window.end)});
  }
  for (const auto& route : engine_.route_log()) {
    if (!route.window.overlaps(day_window)) continue;
    profile.routes.push_back({route.route_uid, route.window.begin,
                              route.window.end});
  }
  for (const auto& enc : engine_.encounter_log()) {
    if (!enc.window.overlaps(day_window)) continue;
    profile.encounters.push_back({enc.contact, enc.place, enc.window.begin,
                                  enc.window.end});
  }
  profile.activity = engine_.activity_for(day);
  return profile;
}

bool PmwareMobileService::tag_place(PlaceUid uid, const std::string& label,
                                    SimTime now) {
  if (!place_store_.set_label(uid, label)) return false;
  if (client_ != nullptr && user_id_) {
    net::HttpRequest request = make_request(
        net::Method::Post,
        strfmt("/api/users/%u/places/%llu/label", *user_id_,
               static_cast<unsigned long long>(uid)),
        now);
    request.body = Json::object();
    request.body.set("label", label);
    client_->send(request);
  }
  return true;
}

bool PmwareMobileService::forget_place(PlaceUid uid, SimTime now) {
  if (place_store_.get(uid) == nullptr) return false;
  place_store_.erase(uid);
  engine_.forget_place(uid);
  if (client_ != nullptr && user_id_) {
    client_->send(make_request(
        net::Method::Delete,
        strfmt("/api/users/%u/places/%llu", *user_id_,
               static_cast<unsigned long long>(uid)),
        now));
  }
  return true;
}

bool PmwareMobileService::wipe_cloud_data(SimTime now) {
  if (client_ == nullptr || !user_id_) return false;
  const net::HttpResponse response = client_->send(
      make_request(net::Method::Delete, strfmt("/api/users/%u", *user_id_), now));
  return response.ok();
}

void PmwareMobileService::shutdown(SimTime now) {
  engine_.flush(now);
  housekeeping(now);
  if (config_.cloud_sync && client_ != nullptr && user_id_) {
    // Final day may be partial; sync it too.
    sync_day(day_of(now), now);
  }
}

}  // namespace pmware::core
