#include "core/pms.hpp"

#include <algorithm>

#include "cache/digest.hpp"
#include "core/codec.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/log.hpp"
#include "util/strfmt.hpp"

namespace pmware::core {

namespace {

constexpr const char* kPlaceEvents = "pms_place_events_total";
constexpr const char* kRouteEvents = "pms_route_events_total";
constexpr const char* kEncounters = "pms_encounters_total";
constexpr const char* kProfileSyncs = "pms_profile_syncs_total";
constexpr const char* kTokenRefreshes = "pms_token_refreshes_total";
constexpr const char* kGcaOffloads = "pms_gca_offloads_total";
constexpr const char* kGcaLocal = "pms_gca_local_total";
constexpr const char* kGcaResyncs = "pms_gca_resyncs_total";
constexpr const char* kSyncFailures = "pms_sync_failures_total";
constexpr const char* kOutboxEnqueued = "pms_outbox_enqueued_total";
constexpr const char* kOutboxDelivered = "pms_outbox_delivered_total";
constexpr const char* kOutboxRecovered = "pms_outbox_recovered_total";
constexpr const char* kOutboxEvicted = "pms_outbox_evicted_total";
constexpr const char* kOutboxDepth = "pms_outbox_depth";

/// Sync-failure kinds beyond the outbox's SyncKinds (direct sends).
constexpr const char* kKindLabel = "label";
constexpr const char* kKindWipe = "wipe";
/// All kind labels pms_sync_failures_total is emitted under, for
/// PmsStats::sync_failures aggregation.
constexpr const char* kFailureKinds[] = {"profile", "place", "place_delete",
                                         "route",   "encounter", "label",
                                         "wipe"};

// Digest primitives (dirty detection, offload cache keys) come from the
// cache subsystem so device and cloud derive identical values.
using cache::fnv1a;
using cache::fold;
constexpr std::uint64_t kDigestBasis = cache::kDigestBasis;

/// Metric-series name of every PMS-side GCA offload cache.
constexpr const char* kGcaCacheName = "pms_gca";
/// The offload cache holds one entry — the result for the current movement
/// graph; any growth of the graph changes the digest and recomputes.
constexpr int kGcaCacheKey = 0;

}  // namespace

PmwareMobileService::PmwareMobileService(
    std::unique_ptr<sensing::Device> device, PmsConfig config,
    std::unique_ptr<net::RestClient> client, Rng rng)
    : config_(std::move(config)),
      device_(std::move(device)),
      meter_(config_.power),
      scheduler_(&meter_),
      apps_(&preferences_),
      engine_(device_.get(), &scheduler_, &place_store_, &apps_,
              config_.inference, rng.fork(1)),
      local_gca_(config_.inference.gca),
      client_(std::move(client)),
      instance_(telemetry::registry().next_instance_label("pms")),
      outbox_(config_.outbox) {
  if (config_.cache) gca_cache_.emplace(kGcaCacheName, 1);
  place_events_counter_.emplace(kPlaceEvents,
                                telemetry::LabelSet{{"instance", instance_}},
                                "place events delivered to connected apps");
  route_events_counter_.emplace(kRouteEvents,
                                telemetry::LabelSet{{"instance", instance_}},
                                "route events delivered to connected apps");
  encounters_counter_.emplace(kEncounters,
                              telemetry::LabelSet{{"instance", instance_}},
                              "encounter events delivered to connected apps");
  outbox_enqueued_counter_.emplace(
      kOutboxEnqueued, telemetry::LabelSet{{"instance", instance_}},
      "sync work items queued in the outbox");
  outbox_evicted_counter_.emplace(
      kOutboxEvicted, telemetry::LabelSet{{"instance", instance_}},
      "outbox entries dropped to capacity (oldest first)");
  outbox_delivered_counter_.emplace(
      kOutboxDelivered, telemetry::LabelSet{{"instance", instance_}},
      "outbox work items delivered to the cloud");
  outbox_recovered_counter_.emplace(
      kOutboxRecovered, telemetry::LabelSet{{"instance", instance_}},
      "outbox items delivered after one or more failed attempts");
  engine_.set_place_event_sink([this](const PlaceEvent& event) {
    std::size_t delivered =
        apps_.deliver_place_event(event, place_store_, bus_);
    delivered += apps_.deliver_geofence(event, place_store_, bus_);
    place_events_counter_->get().inc(delivered);
  });
  engine_.set_route_event_sink([this](const RouteEvent& event) {
    route_events_counter_->get().inc(apps_.deliver_route_event(event, bus_));
  });
  engine_.set_encounter_sink([this](const EncounterEvent& event) {
    encounters_counter_->get().inc(apps_.deliver_encounter(event, bus_));
  });
  engine_.set_gca_runner(
      [this](std::span<const algorithms::CellObservation> observations) {
        return offloaded_gca(observations, scheduler_.now());
      });
  engine_.attach();
}

telemetry::Counter& PmwareMobileService::counter(const char* name,
                                                 const char* help) const {
  return telemetry::registry().counter(name, {{"instance", instance_}}, help);
}

PmsStats PmwareMobileService::stats() const {
  const auto& reg = telemetry::registry();
  const telemetry::LabelSet labels = {{"instance", instance_}};
  PmsStats stats;
  stats.place_events_delivered = reg.counter_value(kPlaceEvents, labels);
  stats.route_events_delivered = reg.counter_value(kRouteEvents, labels);
  stats.encounters_delivered = reg.counter_value(kEncounters, labels);
  stats.profile_syncs = reg.counter_value(kProfileSyncs, labels);
  stats.token_refreshes = reg.counter_value(kTokenRefreshes, labels);
  stats.gca_offloads = reg.counter_value(kGcaOffloads, labels);
  stats.gca_local_runs = reg.counter_value(kGcaLocal, labels);
  for (const char* kind : kFailureKinds)
    stats.sync_failures += reg.counter_value(
        kSyncFailures, {{"instance", instance_}, {"kind", kind}});
  stats.outbox_enqueued = reg.counter_value(kOutboxEnqueued, labels);
  stats.outbox_delivered = reg.counter_value(kOutboxDelivered, labels);
  stats.outbox_recovered = reg.counter_value(kOutboxRecovered, labels);
  stats.outbox_evicted = reg.counter_value(kOutboxEvicted, labels);
  stats.outbox_pending = outbox_.size();
  return stats;
}

net::HttpRequest PmwareMobileService::make_request(net::Method method,
                                                   std::string path,
                                                   SimTime now) const {
  net::HttpRequest request;
  request.method = method;
  request.path = std::move(path);
  request.headers["X-Sim-Time"] = std::to_string(now);
  return request;
}

bool PmwareMobileService::register_with_cloud(SimTime now) {
  if (client_ == nullptr) return false;
  // Remember that the caller wants this device registered: if this attempt
  // fails (outage at study start), housekeeping keeps retrying — the
  // /api/register endpoint is idempotent on (imei, email).
  registration_wanted_ = true;
  net::HttpRequest request = make_request(net::Method::Post, "/api/register", now);
  request.body = Json::object();
  request.body.set("imei", config_.imei);
  request.body.set("email", config_.email);
  const net::HttpResponse response = client_->send(request);
  if (!response.ok()) {
    telemetry::slog_warn("pms", now, "registration failed: %d",
                         response.status);
    return false;
  }
  user_id_ = static_cast<world::DeviceId>(response.body.at("user").as_int());
  client_->set_auth_token(response.body.at("token").as_string());
  token_expires_ = response.body.at("expires_at").as_int();
  telemetry::slog_info("pms", now, "registered as user %u", *user_id_);
  return true;
}

void PmwareMobileService::maybe_refresh_token(SimTime now) {
  if (client_ == nullptr || !user_id_) return;
  // Refresh once less than six hours of validity remain.
  if (token_expires_ - now >= hours(6)) return;
  net::HttpRequest request =
      make_request(net::Method::Post, "/api/token/refresh", now);
  const net::HttpResponse response = client_->send(request);
  if (response.ok()) {
    client_->set_auth_token(response.body.at("token").as_string());
    token_expires_ = response.body.at("expires_at").as_int();
    counter(kTokenRefreshes, "successful bearer-token refreshes").inc();
  } else {
    // Expired beyond refresh: re-register (idempotent on imei/email).
    register_with_cloud(now);
  }
}

algorithms::GcaResult PmwareMobileService::offloaded_gca(
    std::span<const algorithms::CellObservation> observations, SimTime now) {
  // Rolling movement digest: the GSM log is append-only, so extend the
  // digest over just the new observations instead of re-folding the whole
  // log every pass. A shrunk log (a different stream) resets the fold —
  // the same guard GcaState applies.
  if (observations.size() < digest_fed_) {
    digest_fed_ = 0;
    digest_ = cache::kDigestBasis;
    upload_acked_ = 0;
    upload_digest_ = cache::kDigestBasis;
  }
  for (std::size_t i = digest_fed_; i < observations.size(); ++i) {
    cache::fold(digest_, static_cast<std::uint64_t>(observations[i].t));
    cache::fold(digest_, observations[i].cell.key());
  }
  digest_fed_ = observations.size();
  const std::uint64_t graph_digest = digest_;

  // Content-addressed elision: an unchanged movement graph means an
  // identical clustering result (local, offloaded, or replayed — all equal
  // by design), so serve it from the cache without touching the wire.
  bool had_cached = false;
  if (gca_cache_) {
    auto found = gca_cache_->lookup(kGcaCacheKey, graph_digest);
    if (found.value) {
      gca_cache_->record(cache::CacheOutcome::LocalHit);
      return *std::move(found.value);
    }
    had_cached = found.stale;
  }
  if (config_.offload_gca && client_ != nullptr && user_id_) {
    telemetry::Span span(telemetry::tracer(), "pms.gca_offload", now);
    // Suffix upload: ship only what the cloud has not acknowledged, plus a
    // claim about the acknowledged prefix (length + rolling digest). The
    // cloud retains the stream, verifies the claim, and answers 409 when
    // the two sides disagree about history (e.g. a response was lost after
    // the cloud applied a suffix) — then this pass re-sends everything.
    auto build_request = [&](std::size_t from, bool with_prefix) {
      net::HttpRequest request =
          make_request(net::Method::Post, "/api/places/discover", now);
      Json arr = Json::array();
      for (std::size_t i = from; i < observations.size(); ++i) {
        Json o = Json::object();
        o.set("t", observations[i].t);
        o.set("cell", to_json(observations[i].cell));
        arr.push_back(std::move(o));
      }
      request.body = Json::object();
      request.body.set("observations", std::move(arr));
      if (with_prefix) {
        request.body.set("prefix_len", static_cast<std::int64_t>(from));
        request.body.set("prefix_digest", strfmt("%016llx",
            static_cast<unsigned long long>(upload_digest_)));
      }
      return request;
    };
    net::HttpResponse response =
        client_->send(build_request(upload_acked_, true));
    if (response.status == 409) {
      counter(kGcaResyncs,
              "GCA offloads that fell back to a full upload after the cloud "
              "rejected the suffix prefix claim")
          .inc();
      response = client_->send(build_request(0, false));
    }
    if (response.ok()) {
      upload_acked_ = observations.size();
      upload_digest_ = graph_digest;
      counter(kGcaOffloads, "GCA clustering passes offloaded to the cloud")
          .inc();
      algorithms::GcaResult result;
      for (const auto& p : response.body.at("places").as_array()) {
        const auto sig = signature_from_json(p.at("signature"));
        algorithms::CellCluster cluster;
        cluster.signature = std::get<algorithms::CellSignature>(sig);
        cluster.total_dwell = p.at("total_dwell").as_int();
        const std::size_t index = result.places.size();
        for (const auto& cell : cluster.signature.cells)
          result.cell_to_place[cell] = index;
        result.places.push_back(std::move(cluster));
      }
      for (const auto& v : response.body.at("visits").as_array()) {
        result.visits.push_back(
            {static_cast<std::size_t>(v.at("place").as_int()),
             TimeWindow{v.at("arrival").as_int(), v.at("departure").as_int()}});
      }
      // The cloud already recorded its own hit/recompute/miss for this
      // round trip; device-side we only remember the result.
      if (gca_cache_) gca_cache_->put(kGcaCacheKey, result, graph_digest);
      return result;
    }
    telemetry::slog_warn("pms", now, "GCA offload failed (%d); running locally",
                         response.status);
  }
  counter(kGcaLocal, "GCA clustering passes run on-device").inc();
  telemetry::Span span(telemetry::tracer(), "pms.gca_local", now);
  algorithms::GcaResult result = local_gca_.run(observations);
  if (gca_cache_) {
    // A failed offload never reached the cloud handler (client-side loss
    // and fault injection both fire before it), so recording the local
    // outcome here cannot double-count against the cloud's taxonomy.
    gca_cache_->record(had_cached ? cache::CacheOutcome::Recompute
                                  : cache::CacheOutcome::Miss);
    gca_cache_->put(kGcaCacheKey, result, graph_digest);
  }
  return result;
}

void PmwareMobileService::run(TimeWindow window) {
  telemetry::ScopedTimer run_span(telemetry::tracer(), "pms.run",
                                  [this] { return scheduler_.now(); });
  // Split at day boundaries so housekeeping runs between days.
  SimTime cursor = window.begin;
  while (cursor < window.end) {
    const SimTime day_end =
        std::min(window.end, start_of_day(day_of(cursor) + 1));
    scheduler_.run(TimeWindow{cursor, day_end});
    cursor = day_end;
    if (cursor < window.end || time_of_day(cursor) == 0)
      housekeeping(cursor);
  }
}

void PmwareMobileService::housekeeping(SimTime now) {
  // Sim time stands still during housekeeping — the span exists for its wall
  // cost and to parent the GCA offload/local spans opened underneath.
  telemetry::Span span(telemetry::tracer(), "pms.housekeeping", now);
  // A wanted-but-failed registration (outage at study start) retries here;
  // everything downstream needs the user id and token it produces.
  if (client_ != nullptr && registration_wanted_ && !user_id_)
    register_with_cloud(now);
  // Refresh credentials next: the recluster below may offload to the cloud.
  maybe_refresh_token(now);
  engine_.recluster(now);
  if (config_.cloud_sync && client_ != nullptr && user_id_) {
    const std::int64_t up_to = day_of(now) - (time_of_day(now) == 0 ? 1 : 0);
    enqueue_sync_work(up_to, now);
    drain_outbox(now);
  }
}

void PmwareMobileService::enqueue_sync_work(std::int64_t up_to, SimTime now) {
  // Dirty profile days. Each recluster can refine earlier days' visit logs,
  // so completed days are re-checked — but only days whose content digest
  // actually changed are re-PUT, not every day from 0 (the digests come
  // from one pass over the logs, so a steady-state tick costs O(logs),
  // not O(days * logs)).
  day_digest_cache_ = day_digests(up_to);
  for (std::int64_t day = 0; day <= up_to; ++day) {
    const auto& [digest, any] = day_digest_cache_[static_cast<std::size_t>(day)];
    if (!any) continue;  // empty profile: nothing to PUT (matches old skip)
    const auto it = synced_day_digest_.find(day);
    if (it != synced_day_digest_.end() && it->second == digest) continue;
    enqueue(SyncKind::ProfileDay, static_cast<std::uint64_t>(day), 0, now);
  }

  // Dirty place records (signatures may have shifted after recluster, the
  // user may have tagged a label). Dirtiness is the digest of the exact
  // body deliver() would PUT.
  for (const auto& [uid, record] : place_store_.records()) {
    PlaceRecord stripped = record;
    stripped.location.reset();
    const std::uint64_t digest = fnv1a(to_json(stripped).dump());
    const auto it = synced_place_digest_.find(uid);
    if (it != synced_place_digest_.end() && it->second == digest) continue;
    enqueue(SyncKind::PlaceUpsert, static_cast<std::uint64_t>(uid), 0, now);
  }

  // Journeys completed since the last tick; the log index doubles as the
  // replay sequence number the cloud dedups on.
  const auto& route_log = engine_.route_log();
  for (; routes_enqueued_ < route_log.size(); ++routes_enqueued_)
    enqueue(SyncKind::Route, static_cast<std::uint64_t>(routes_enqueued_), 0,
            now);

  // New social encounters, as one batch entry per drain backlog.
  const auto& encounter_log = engine_.encounter_log();
  if (encounters_enqueued_ < encounter_log.size()) {
    enqueue(SyncKind::EncounterBatch,
            static_cast<std::uint64_t>(encounters_enqueued_),
            static_cast<std::uint64_t>(encounter_log.size()), now);
    encounters_enqueued_ = encounter_log.size();
  }
}

void PmwareMobileService::enqueue(SyncKind kind, std::uint64_t key,
                                  std::uint64_t key2, SimTime now) {
  const SyncOutbox::EnqueueResult result = outbox_.enqueue(kind, key, key2, now);
  if (result.appended) outbox_enqueued_counter_->get().inc();
  if (result.evicted) {
    outbox_evicted_counter_->get().inc();
    // A dropped day/place re-detects as dirty next tick (its synced digest
    // was never updated); dropped routes/encounters are honest data loss.
    telemetry::slog_warn(
        "pms", now, "outbox full (%zu): evicted %s key=%llu queued at %lld",
        outbox_.config().capacity, kind_name(result.evicted->kind),
        static_cast<unsigned long long>(result.evicted->key),
        static_cast<long long>(result.evicted->enqueued_at));
  }
}

void PmwareMobileService::drain_outbox(SimTime now) {
  outbox_.drain([&](const OutboxEntry& entry) {
    if (!deliver(entry, now)) {
      record_sync_failure(entry.kind, 0, now);
      return false;
    }
    outbox_delivered_counter_->get().inc();
    if (entry.attempts > 0) outbox_recovered_counter_->get().inc();
    return true;
  });
  telemetry::registry()
      .gauge(kOutboxDepth, {{"instance", instance_}},
             "sync work items currently queued")
      .set(static_cast<double>(outbox_.size()));
}

bool PmwareMobileService::deliver(const OutboxEntry& entry, SimTime now) {
  switch (entry.kind) {
    case SyncKind::ProfileDay: {
      const auto day = static_cast<std::int64_t>(entry.key);
      const MobilityProfile profile = profile_for(day);
      if (profile.empty()) return true;  // refined away since enqueue
      net::HttpRequest request = make_request(
          net::Method::Put,
          strfmt("/api/users/%u/profiles/%lld", *user_id_,
                 static_cast<long long>(day)),
          now);
      request.body = to_json(profile);
      if (!client_->send(request).ok()) return false;
      counter(kProfileSyncs, "mobility-profile days synced to the cloud").inc();
      if (static_cast<std::size_t>(day) < day_digest_cache_.size())
        synced_day_digest_[day] =
            day_digest_cache_[static_cast<std::size_t>(day)].first;
      return true;
    }
    case SyncKind::PlaceUpsert: {
      const auto uid = static_cast<PlaceUid>(entry.key);
      const PlaceRecord* record = place_store_.get(uid);
      if (record == nullptr) return true;  // forgotten since enqueue
      // The body never carries the locally cached location: the cloud
      // resolves coordinates from the signature in the body on every PUT,
      // so cloud state is a pure function of the record content — a
      // replayed upsert after an outage converges to the same bytes as the
      // never-failed run (DESIGN.md "Failure model & recovery").
      PlaceRecord stripped = *record;
      stripped.location.reset();
      net::HttpRequest request = make_request(
          net::Method::Put,
          strfmt("/api/users/%u/places/%llu", *user_id_,
                 static_cast<unsigned long long>(uid)),
          now);
      request.body = to_json(stripped);
      const std::uint64_t digest = fnv1a(request.body.dump());
      const net::HttpResponse response = client_->send(request);
      if (!response.ok()) return false;
      // Cache the echoed resolution (geofencing and the map UI need
      // positions on-device) — from every echo, so the local view follows
      // the cloud's current resolution instead of pinning the first one.
      if (response.body.contains("location")) {
        if (PlaceRecord* mut = place_store_.get_mutable(uid))
          mut->location = latlng_from_json(response.body.at("location"));
      }
      synced_place_digest_[uid] = digest;
      return true;
    }
    case SyncKind::PlaceDelete: {
      const auto uid = static_cast<PlaceUid>(entry.key);
      const net::HttpResponse response = client_->send(make_request(
          net::Method::Delete,
          strfmt("/api/users/%u/places/%llu", *user_id_,
                 static_cast<unsigned long long>(uid)),
          now));
      // 404 means an earlier attempt (or never-synced place) already left
      // the cloud without it: done.
      return response.ok() || response.status == net::kStatusNotFound;
    }
    case SyncKind::Route: {
      const auto index = static_cast<std::size_t>(entry.key);
      const auto& route_log = engine_.route_log();
      if (index >= route_log.size()) return true;
      const RouteEvent& event = route_log[index];
      const auto& canonical = engine_.routes().routes();
      if (event.route_uid >= canonical.size()) return true;  // not canonical
      const algorithms::RouteObservation& rep =
          canonical[event.route_uid].representative;
      net::HttpRequest request = make_request(
          net::Method::Post, strfmt("/api/users/%u/routes", *user_id_), now);
      request.body = Json::object();
      // Replay guard: the cloud skips sequence numbers it already applied.
      request.body.set("seq", entry.key);
      request.body.set("from", static_cast<std::uint64_t>(event.from));
      request.body.set("to", static_cast<std::uint64_t>(event.to));
      request.body.set("start", event.window.begin);
      request.body.set("end", event.window.end);
      if (!rep.cells.cells.empty()) {
        Json cells = Json::array();
        for (std::size_t i = 0; i < rep.cells.cells.size(); ++i) {
          Json c = Json::object();
          c.set("t", rep.cells.times[i]);
          c.set("cell", to_json(rep.cells.cells[i]));
          cells.push_back(std::move(c));
        }
        request.body.set("cells", std::move(cells));
      }
      if (!rep.gps.points.empty()) {
        Json gps = Json::array();
        for (std::size_t i = 0; i < rep.gps.points.size(); ++i) {
          Json g = to_json(rep.gps.points[i]);
          g.set("t", rep.gps.times[i]);
          gps.push_back(std::move(g));
        }
        request.body.set("gps", std::move(gps));
      }
      return client_->send(request).ok();
    }
    case SyncKind::EncounterBatch: {
      const auto& encounter_log = engine_.encounter_log();
      const std::size_t first = static_cast<std::size_t>(entry.key);
      const std::size_t last =
          std::min(static_cast<std::size_t>(entry.key2), encounter_log.size());
      if (first >= last) return true;
      net::HttpRequest request = make_request(
          net::Method::Post, strfmt("/api/users/%u/contacts", *user_id_), now);
      Json encounters = Json::array();
      for (std::size_t i = first; i < last; ++i) {
        const EncounterEvent& event = encounter_log[i];
        Json e = Json::object();
        e.set("contact", static_cast<std::uint64_t>(event.contact));
        e.set("place", static_cast<std::uint64_t>(event.place));
        e.set("start", event.window.begin);
        e.set("end", event.window.end);
        encounters.push_back(std::move(e));
      }
      request.body = Json::object();
      // Replay guard: the cloud trims entries below its high-water mark.
      request.body.set("first_index", entry.key);
      request.body.set("encounters", std::move(encounters));
      return client_->send(request).ok();
    }
  }
  return true;
}

void PmwareMobileService::record_sync_failure(SyncKind kind, int status,
                                              SimTime now) {
  telemetry::registry()
      .counter(kSyncFailures,
               {{"instance", instance_}, {"kind", kind_name(kind)}},
               "sync sends that failed (parked in the outbox for replay)")
      .inc();
  telemetry::slog_warn("pms", now, "%s sync failed (status %d); outbox holds %zu",
                       kind_name(kind), status, outbox_.size());
}

std::vector<std::pair<std::uint64_t, bool>> PmwareMobileService::day_digests(
    std::int64_t up_to) const {
  std::vector<std::pair<std::uint64_t, bool>> digests(
      up_to < 0 ? 0 : static_cast<std::size_t>(up_to) + 1,
      {kDigestBasis, false});
  if (digests.empty()) return digests;
  // One pass over each log, folding every entry into the digests of the
  // days it contributes to — the same inclusion rules as profile_for():
  // visits clamp to the day and must meet the dwell minimum; routes and
  // encounters contribute their unclamped windows to every day they
  // overlap. Day windows are half-open, so an event's last touched day is
  // day_of(end - 1) — except zero-length windows, which overlaps() counts
  // on their single day.
  const auto touched_days = [&](const TimeWindow& w,
                                const auto& per_day) {
    const std::int64_t first = std::max<std::int64_t>(0, day_of(w.begin));
    const std::int64_t last =
        std::min(up_to, day_of(std::max(w.end - 1, w.begin)));
    for (std::int64_t day = first; day <= last; ++day)
      per_day(day, TimeWindow{start_of_day(day), start_of_day(day + 1)});
  };
  for (const auto& visit : engine_.visit_log()) {
    touched_days(visit.window, [&](std::int64_t day, const TimeWindow& dw) {
      if (visit.window.overlap_length(dw) < config_.inference.min_visit_dwell)
        return;
      auto& [h, any] = digests[static_cast<std::size_t>(day)];
      fold(h, 1);  // domain tag: visit
      fold(h, static_cast<std::uint64_t>(visit.uid));
      fold(h, static_cast<std::uint64_t>(std::max(visit.window.begin, dw.begin)));
      fold(h, static_cast<std::uint64_t>(std::min(visit.window.end, dw.end)));
      any = true;
    });
  }
  for (const auto& route : engine_.route_log()) {
    touched_days(route.window, [&](std::int64_t day, const TimeWindow& dw) {
      if (!route.window.overlaps(dw)) return;
      auto& [h, any] = digests[static_cast<std::size_t>(day)];
      fold(h, 2);  // domain tag: route
      fold(h, static_cast<std::uint64_t>(route.route_uid));
      fold(h, static_cast<std::uint64_t>(route.window.begin));
      fold(h, static_cast<std::uint64_t>(route.window.end));
      any = true;
    });
  }
  for (const auto& enc : engine_.encounter_log()) {
    touched_days(enc.window, [&](std::int64_t day, const TimeWindow& dw) {
      if (!enc.window.overlaps(dw)) return;
      auto& [h, any] = digests[static_cast<std::size_t>(day)];
      fold(h, 3);  // domain tag: encounter
      fold(h, static_cast<std::uint64_t>(enc.contact));
      fold(h, static_cast<std::uint64_t>(enc.place));
      fold(h, static_cast<std::uint64_t>(enc.window.begin));
      fold(h, static_cast<std::uint64_t>(enc.window.end));
      any = true;
    });
  }
  for (std::int64_t day = 0; day <= up_to; ++day) {
    const ActivitySummary activity = engine_.activity_for(day);
    if (activity.empty()) continue;
    auto& [h, any] = digests[static_cast<std::size_t>(day)];
    fold(h, 4);  // domain tag: activity
    fold(h, static_cast<std::uint64_t>(activity.still));
    fold(h, static_cast<std::uint64_t>(activity.walking));
    fold(h, static_cast<std::uint64_t>(activity.vehicle));
    any = true;
  }
  return digests;
}

MobilityProfile PmwareMobileService::profile_for(std::int64_t day) const {
  MobilityProfile profile;
  profile.user = user_id_.value_or(0);
  profile.day = day;
  const TimeWindow day_window{start_of_day(day), start_of_day(day + 1)};

  for (const auto& visit : engine_.visit_log()) {
    const SimDuration overlap = visit.window.overlap_length(day_window);
    if (overlap < config_.inference.min_visit_dwell) continue;
    profile.places.push_back(
        {visit.uid, std::max(visit.window.begin, day_window.begin),
         std::min(visit.window.end, day_window.end)});
  }
  for (const auto& route : engine_.route_log()) {
    if (!route.window.overlaps(day_window)) continue;
    profile.routes.push_back({route.route_uid, route.window.begin,
                              route.window.end});
  }
  for (const auto& enc : engine_.encounter_log()) {
    if (!enc.window.overlaps(day_window)) continue;
    profile.encounters.push_back({enc.contact, enc.place, enc.window.begin,
                                  enc.window.end});
  }
  profile.activity = engine_.activity_for(day);
  return profile;
}

bool PmwareMobileService::tag_place(PlaceUid uid, const std::string& label,
                                    SimTime now) {
  if (!place_store_.set_label(uid, label)) return false;
  if (client_ != nullptr && user_id_) {
    net::HttpRequest request = make_request(
        net::Method::Post,
        strfmt("/api/users/%u/places/%llu/label", *user_id_,
               static_cast<unsigned long long>(uid)),
        now);
    request.body = Json::object();
    request.body.set("label", label);
    const net::HttpResponse response = client_->send(request);
    if (!response.ok()) {
      // No outbox entry needed: the label rides the place record, whose
      // digest just changed — the next housekeeping tick re-upserts it.
      telemetry::registry()
          .counter(kSyncFailures,
                   {{"instance", instance_}, {"kind", kKindLabel}},
                   "sync sends that failed (parked in the outbox for replay)")
          .inc();
      telemetry::slog_warn("pms", now, "label sync for place %llu failed (%d)",
                           static_cast<unsigned long long>(uid),
                           response.status);
    }
  }
  return true;
}

bool PmwareMobileService::forget_place(PlaceUid uid, SimTime now) {
  if (place_store_.get(uid) == nullptr) return false;
  place_store_.erase(uid);
  engine_.forget_place(uid);
  // A queued upsert must not resurrect the place on replay, and the stale
  // digest must not suppress a future re-discovery's upsert.
  outbox_.remove(SyncKind::PlaceUpsert, static_cast<std::uint64_t>(uid));
  synced_place_digest_.erase(uid);
  if (client_ != nullptr && user_id_) {
    const net::HttpResponse response = client_->send(make_request(
        net::Method::Delete,
        strfmt("/api/users/%u/places/%llu", *user_id_,
               static_cast<unsigned long long>(uid)),
        now));
    if (!response.ok() && response.status != net::kStatusNotFound) {
      record_sync_failure(SyncKind::PlaceDelete, response.status, now);
      enqueue(SyncKind::PlaceDelete, static_cast<std::uint64_t>(uid), 0, now);
    }
  }
  return true;
}

bool PmwareMobileService::wipe_cloud_data(SimTime now) {
  if (client_ == nullptr || !user_id_) return false;
  const net::HttpResponse response = client_->send(
      make_request(net::Method::Delete, strfmt("/api/users/%u", *user_id_), now));
  if (!response.ok()) {
    telemetry::registry()
        .counter(kSyncFailures, {{"instance", instance_}, {"kind", kKindWipe}},
                 "sync sends that failed (parked in the outbox for replay)")
        .inc();
    telemetry::slog_warn("pms", now, "cloud wipe failed (%d)", response.status);
  }
  return response.ok();
}

void PmwareMobileService::shutdown(SimTime now) {
  engine_.flush(now);
  housekeeping(now);
  if (config_.cloud_sync && client_ != nullptr && user_id_) {
    // The final day may be partial (housekeeping above only covered
    // completed days); queue it plus anything still parked, and drain.
    enqueue_sync_work(day_of(now), now);
    drain_outbox(now);
  }
}

}  // namespace pmware::core
