// PMS-side place registry: assigns stable PlaceUids to discovered
// signatures, accumulates visit statistics, and holds user labels
// (the data behind the visualization & labeling module, paper §2.2.5).
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "core/model.hpp"

namespace pmware::core {

class PlaceStore {
 public:
  /// Finds the record whose signature matches `sig` (same kind, similarity
  /// above the matching threshold), or creates one. Returns the uid and
  /// whether it was newly created.
  std::pair<PlaceUid, bool> intern(const algorithms::PlaceSignature& sig,
                                   Granularity granularity);

  /// Matches without creating.
  std::optional<PlaceUid> find(const algorithms::PlaceSignature& sig) const;

  const PlaceRecord* get(PlaceUid uid) const;
  PlaceRecord* get_mutable(PlaceUid uid);

  /// Records one completed visit for statistics.
  void record_visit(PlaceUid uid, SimDuration dwell);

  /// User tags a place with a semantic label (life-logging UI, §3).
  bool set_label(PlaceUid uid, const std::string& label);

  /// Removes a record entirely ("forget this place"). The uid is never
  /// reused. Returns true if it existed.
  bool erase(PlaceUid uid) { return records_.erase(uid) > 0; }

  const std::map<PlaceUid, PlaceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// Replaces the registry wholesale (checkpoint restore, cold-restart
  /// rebuild from cloud records). `next_uid` must exceed every uid in
  /// `records` so uids are never reused across incarnations — re-discovered
  /// signatures then intern to their old uids and cloud upserts converge.
  void restore(std::vector<PlaceRecord> records, PlaceUid next_uid) {
    records_.clear();
    for (PlaceRecord& record : records) {
      const PlaceUid uid = record.uid;
      next_uid = std::max(next_uid, uid + 1);
      records_[uid] = std::move(record);
    }
    next_uid_ = next_uid;
  }
  PlaceUid next_uid() const { return next_uid_; }

  std::vector<PlaceUid> with_label(const std::string& label) const;

 private:
  std::map<PlaceUid, PlaceRecord> records_;
  PlaceUid next_uid_ = 1;
};

}  // namespace pmware::core
