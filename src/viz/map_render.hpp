// Visualization module (paper §2.2.5, Figures 4 & 5b): renders discovered
// places on a map and a user's day as a timeline — the data views the
// life-logging app shows so users can validate and label discovery results.
//
// Two output forms: ASCII (for terminals, benches and logs) and SVG (the
// map interface of Figure 4a / 5b).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/latlng.hpp"
#include "util/simtime.hpp"

namespace pmware::viz {

/// One dot on the map.
struct MapMarker {
  geo::LatLng position;
  std::string label;       ///< optional; shown in SVG tooltips
  char glyph = 'o';        ///< ASCII glyph
  std::string color = "#4466cc";  ///< SVG fill
  double radius_px = 4;
};

struct MapExtent {
  geo::LatLng origin;  ///< south-west corner
  double extent_m = 6000;
};

/// Renders markers into a `cols` x `rows` ASCII grid. Markers sharing a grid
/// cell collapse into '#'. Out-of-extent markers are dropped.
std::string render_ascii_map(const MapExtent& extent,
                             const std::vector<MapMarker>& markers,
                             int cols = 60, int rows = 24);

/// Renders markers (and optional polylines) as a standalone SVG document.
struct SvgPolyline {
  std::vector<geo::LatLng> points;
  std::string color = "#999999";
  double width_px = 1.5;
};

std::string render_svg_map(const MapExtent& extent,
                           const std::vector<MapMarker>& markers,
                           const std::vector<SvgPolyline>& polylines = {},
                           int width_px = 640, int height_px = 640);

/// One block of a day timeline (Figure 4c's per-place stay view).
struct TimelineEntry {
  TimeWindow window;
  std::string label;
  char glyph = '#';
};

/// Renders a one-day timeline as a fixed-width bar, one character per
/// `bucket` seconds (default: one char per 15 min => 96 columns), with a
/// legend of the labels used. Entries outside `day` are clipped.
std::string render_day_timeline(std::int64_t day,
                                const std::vector<TimelineEntry>& entries,
                                SimDuration bucket = minutes(15));

}  // namespace pmware::viz
