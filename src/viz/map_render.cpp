#include "viz/map_render.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/strfmt.hpp"

namespace pmware::viz {

namespace {

/// Projects into [0,1)^2 within the extent; nullopt if outside.
std::optional<std::pair<double, double>> unit_project(const MapExtent& extent,
                                                      const geo::LatLng& p) {
  const geo::EnuOffset off = geo::to_enu(extent.origin, p);
  const double x = off.east_m / extent.extent_m;
  const double y = off.north_m / extent.extent_m;
  if (x < 0 || x >= 1 || y < 0 || y >= 1) return std::nullopt;
  return std::make_pair(x, y);
}

std::string xml_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_ascii_map(const MapExtent& extent,
                             const std::vector<MapMarker>& markers, int cols,
                             int rows) {
  if (cols < 2 || rows < 2)
    throw std::invalid_argument("render_ascii_map: grid too small");
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), '.'));
  for (const MapMarker& marker : markers) {
    const auto unit = unit_project(extent, marker.position);
    if (!unit) continue;
    const int c = std::min(cols - 1, static_cast<int>(unit->first * cols));
    const int r =
        rows - 1 - std::min(rows - 1, static_cast<int>(unit->second * rows));
    char& cell = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    cell = cell == '.' ? marker.glyph : '#';
  }
  std::string out;
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

std::string render_svg_map(const MapExtent& extent,
                           const std::vector<MapMarker>& markers,
                           const std::vector<SvgPolyline>& polylines,
                           int width_px, int height_px) {
  std::string out = strfmt(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\">\n"
      "<rect width=\"%d\" height=\"%d\" fill=\"#f7f5f0\"/>\n",
      width_px, height_px, width_px, height_px, width_px, height_px);

  auto to_px = [&](const geo::LatLng& p)
      -> std::optional<std::pair<double, double>> {
    const auto unit = unit_project(extent, p);
    if (!unit) return std::nullopt;
    return std::make_pair(unit->first * width_px,
                          (1.0 - unit->second) * height_px);
  };

  for (const SvgPolyline& line : polylines) {
    std::string points;
    for (const geo::LatLng& p : line.points) {
      const auto px = to_px(p);
      if (!px) continue;
      points += strfmt("%.1f,%.1f ", px->first, px->second);
    }
    if (points.empty()) continue;
    out += strfmt(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
        "stroke-width=\"%.1f\"/>\n",
        points.c_str(), line.color.c_str(), line.width_px);
  }

  for (const MapMarker& marker : markers) {
    const auto px = to_px(marker.position);
    if (!px) continue;
    out += strfmt("<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\">",
                  px->first, px->second, marker.radius_px,
                  marker.color.c_str());
    if (!marker.label.empty())
      out += strfmt("<title>%s</title>", xml_escape(marker.label).c_str());
    out += "</circle>\n";
  }
  out += "</svg>\n";
  return out;
}

std::string render_day_timeline(std::int64_t day,
                                const std::vector<TimelineEntry>& entries,
                                SimDuration bucket) {
  if (bucket <= 0)
    throw std::invalid_argument("render_day_timeline: bucket <= 0");
  const TimeWindow day_window{start_of_day(day), start_of_day(day + 1)};
  const auto columns = static_cast<std::size_t>(kSecondsPerDay / bucket);
  std::string bar(columns, '.');
  std::map<char, std::string> legend;

  for (const TimelineEntry& entry : entries) {
    const SimTime begin = std::max(entry.window.begin, day_window.begin);
    const SimTime end = std::min(entry.window.end, day_window.end);
    if (end <= begin) continue;
    legend[entry.glyph] = entry.label;
    const auto first = static_cast<std::size_t>((begin - day_window.begin) / bucket);
    auto last = static_cast<std::size_t>((end - 1 - day_window.begin) / bucket);
    last = std::min(last, columns - 1);
    for (std::size_t i = first; i <= last; ++i) bar[i] = entry.glyph;
  }

  std::string out = strfmt("day %lld  00h", static_cast<long long>(day));
  // Hour ruler every 6 hours.
  out += "\n  ";
  for (std::size_t i = 0; i < columns; ++i) {
    const SimDuration tod = static_cast<SimDuration>(i) * bucket;
    out += (tod % hours(6) == 0 && tod > 0) ? '|' : ' ';
  }
  out += "\n  " + bar + "\n";
  for (const auto& [glyph, label] : legend)
    out += strfmt("  %c = %s\n", glyph, label.c_str());
  return out;
}

}  // namespace pmware::viz
