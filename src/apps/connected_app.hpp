// Base class for connected third-party applications (paper §2.2.4): an app
// registers an intent receiver with the PMS bus and files its place/route/
// social requirements, then reacts to the alerts PMWare broadcasts.
#pragma once

#include <string>

#include "core/pms.hpp"

namespace pmware::apps {

class ConnectedApp {
 public:
  explicit ConnectedApp(std::string name) : name_(std::move(name)) {}
  virtual ~ConnectedApp() = default;

  ConnectedApp(const ConnectedApp&) = delete;
  ConnectedApp& operator=(const ConnectedApp&) = delete;

  const std::string& name() const { return name_; }

  /// Registers this app's receiver and requirements with the PMS. Call once;
  /// the PMS must outlive the app.
  virtual void connect(core::PmwareMobileService& pms) = 0;

 protected:
  std::string name_;
  core::ReceiverId receiver_ = 0;
};

}  // namespace pmware::apps
