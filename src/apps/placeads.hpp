// PlaceADs (paper §3/§4): the proof-of-concept connected application that
// pushes contextual advertisements when the user visits a place. Each ad is
// shown as a card; the user swipes left (like) or right (dislike). The
// deployment study reports the aggregate like:dislike ratio (17:3).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "apps/connected_app.hpp"
#include "util/rng.hpp"

namespace pmware::apps {

struct Ad {
  std::uint32_t id = 0;
  std::string category;  ///< POI category the ad is relevant to ("cafe", ...)
  std::string title;
  int discount_percent = 0;
};

/// Static ad inventory keyed by category, with a default catalogue covering
/// the categories the synthetic world generates.
class AdInventory {
 public:
  void add(Ad ad);
  /// Ads in `category`; empty vector when none.
  std::vector<const Ad*> by_category(const std::string& category) const;
  const std::vector<Ad>& all() const { return ads_; }

  static AdInventory default_catalogue();

 private:
  std::vector<Ad> ads_;
};

struct AdImpression {
  Ad ad;
  core::PlaceUid place = core::kNoPlaceUid;
  SimTime t = 0;
  bool targeted = false;  ///< ad category derived from the place's label
  bool liked = false;
};

class PlaceAds : public ConnectedApp {
 public:
  /// `judge(impression)` decides the swipe; defaults to a model where
  /// targeted ads are liked far more often than shotgun ones.
  using FeedbackJudge = std::function<bool(const AdImpression&)>;

  PlaceAds(AdInventory inventory, Rng rng);

  void connect(core::PmwareMobileService& pms) override;
  void set_feedback_judge(FeedbackJudge judge) { judge_ = std::move(judge); }

  const std::vector<AdImpression>& impressions() const { return impressions_; }
  std::size_t likes() const;
  std::size_t dislikes() const;
  /// likes : dislikes as a ratio normalized to 20 parts (paper: 17 : 3).
  std::pair<double, double> ratio_of_twenty() const;

  /// Maps a place label to the ad categories worth pushing there — e.g. at a
  /// gym push cafe/restaurant offers nearby.
  static std::vector<std::string> target_categories(const std::string& label);

 private:
  void on_intent(const core::Intent& intent);
  bool default_judge(const AdImpression& impression);

  AdInventory inventory_;
  Rng rng_;
  FeedbackJudge judge_;
  core::PmwareMobileService* pms_ = nullptr;
  std::vector<AdImpression> impressions_;
  /// Throttle: at most one ad per place per this period.
  std::map<core::PlaceUid, SimTime> last_shown_;
  SimDuration min_repeat_gap_ = hours(6);
};

}  // namespace pmware::apps
