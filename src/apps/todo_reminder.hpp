// The To-Do application of the paper's §2.4 use case: "alert the user with
// reminders when she enters/leaves her workplace", requested at
// building-level granularity, tracked 9 AM - 6 PM.
#pragma once

#include <string>
#include <vector>

#include "apps/connected_app.hpp"

namespace pmware::apps {

struct TodoItem {
  std::string text;
  /// Fire on entering (true) or leaving (false) the tracked place.
  bool on_enter = true;
};

struct FiredReminder {
  std::string text;
  core::PlaceUid place = core::kNoPlaceUid;
  SimTime t = 0;
  bool entered = false;
};

class TodoReminder : public ConnectedApp {
 public:
  /// Reminders fire at places carrying `tracked_label` ("workplace").
  explicit TodoReminder(std::string tracked_label = "workplace",
                        DailyWindow window = DailyWindow{hours(9), hours(18)});

  void connect(core::PmwareMobileService& pms) override;

  void add_todo(TodoItem item) { todos_.push_back(std::move(item)); }

  const std::vector<FiredReminder>& fired() const { return fired_; }
  std::size_t enter_alerts() const { return enter_alerts_; }
  std::size_t exit_alerts() const { return exit_alerts_; }

 private:
  void on_intent(const core::Intent& intent);

  std::string tracked_label_;
  DailyWindow window_;
  std::vector<TodoItem> todos_;
  std::vector<FiredReminder> fired_;
  std::size_t enter_alerts_ = 0;
  std::size_t exit_alerts_ = 0;
};

}  // namespace pmware::apps
