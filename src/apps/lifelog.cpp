#include "apps/lifelog.hpp"

#include "util/strfmt.hpp"

namespace pmware::apps {

void LifeLog::connect(core::PmwareMobileService& pms) {
  pms_ = &pms;
  core::IntentFilter filter;
  filter.actions = {core::actions::kPlaceEnter, core::actions::kPlaceExit,
                    core::actions::kNewPlace};
  receiver_ = pms.bus().register_receiver(
      filter, [this](const core::Intent& intent) { on_intent(intent); });

  core::PlaceAlertRequest request;
  request.app = name_;
  request.granularity = core::Granularity::Building;
  request.want_enter = true;
  request.want_exit = true;
  request.want_new_place = true;
  request.receiver = receiver_;
  pms.apps().register_place_alerts(std::move(request));
}

void LifeLog::on_intent(const core::Intent& intent) {
  const auto place =
      static_cast<core::PlaceUid>(intent.extras.get_int("place_uid", 0));
  if (place == core::kNoPlaceUid) return;
  PlaceUsage& usage = usage_[place];
  const SimTime t = intent.extras.get_int("t", 0);
  if (intent.action == core::actions::kPlaceExit) {
    const SimDuration dwell = intent.extras.get_int("dwell", 0);
    usage.total_stay += dwell;
    ++usage.visit_count;
    usage.visiting_days.insert(day_of(t));
  } else if (intent.action == core::actions::kPlaceEnter) {
    usage.visiting_days.insert(day_of(t));
  }
}

std::vector<core::PlaceUid> LifeLog::untagged_places() const {
  std::vector<core::PlaceUid> out;
  if (pms_ == nullptr) return out;
  for (const auto& [uid, record] : pms_->places().records())
    if (record.label.empty()) out.push_back(uid);
  return out;
}

bool LifeLog::tag(core::PlaceUid uid, const std::string& label, SimTime now) {
  return pms_ != nullptr && pms_->tag_place(uid, label, now);
}

std::size_t LifeLog::discovered_places() const {
  return pms_ == nullptr ? 0 : pms_->places().size();
}

std::string LifeLog::render_place_list() const {
  std::string out;
  if (pms_ == nullptr) return out;
  for (const auto& [uid, record] : pms_->places().records()) {
    const auto it = usage_.find(uid);
    const SimDuration stay = it == usage_.end() ? 0 : it->second.total_stay;
    const std::size_t days =
        it == usage_.end() ? 0 : it->second.visiting_days.size();
    out += strfmt("  #%-4llu %-14s stay %-12s days %zu\n",
                  static_cast<unsigned long long>(uid),
                  record.label.empty() ? "(untagged)" : record.label.c_str(),
                  format_duration(stay).c_str(), days);
  }
  return out;
}

}  // namespace pmware::apps
