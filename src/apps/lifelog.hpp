// The life-logging application PMWare ships with (paper §3, Figure 4): lets
// the user see all automatically-discovered places, validate them, tag them
// with semantic labels, and browse per-place stay time and visiting days.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/connected_app.hpp"

namespace pmware::apps {

struct PlaceUsage {
  SimDuration total_stay = 0;
  std::size_t visit_count = 0;
  std::set<std::int64_t> visiting_days;
};

class LifeLog : public ConnectedApp {
 public:
  LifeLog() : ConnectedApp("lifelog") {}

  void connect(core::PmwareMobileService& pms) override;

  /// Places the user has not tagged yet (candidates for the Figure 4 map UI).
  std::vector<core::PlaceUid> untagged_places() const;

  /// Tags a place through the PMS visualization module (local + cloud).
  bool tag(core::PlaceUid uid, const std::string& label, SimTime now);

  /// Per-place stay statistics, as shown in Figure 4c.
  const std::map<core::PlaceUid, PlaceUsage>& usage() const { return usage_; }

  std::size_t discovered_places() const;

  /// Multi-line textual rendering of the place list (the Figure 4b list).
  std::string render_place_list() const;

 private:
  void on_intent(const core::Intent& intent);

  core::PmwareMobileService* pms_ = nullptr;
  std::map<core::PlaceUid, PlaceUsage> usage_;
};

}  // namespace pmware::apps
