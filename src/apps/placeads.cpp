#include "apps/placeads.hpp"

#include <algorithm>

#include "util/strfmt.hpp"

namespace pmware::apps {

void AdInventory::add(Ad ad) { ads_.push_back(std::move(ad)); }

std::vector<const Ad*> AdInventory::by_category(
    const std::string& category) const {
  std::vector<const Ad*> out;
  for (const Ad& ad : ads_)
    if (ad.category == category) out.push_back(&ad);
  return out;
}

AdInventory AdInventory::default_catalogue() {
  AdInventory inv;
  std::uint32_t id = 1;
  const std::pair<const char*, const char*> entries[] = {
      {"cafe", "Flat white 2-for-1 at Third Wave"},
      {"cafe", "Free cookie with any latte"},
      {"restaurant", "Lunch thali at half price"},
      {"restaurant", "Chef's tasting menu -30%%"},
      {"market", "Fresh produce morning discount"},
      {"mall", "Weekend mega sale across 40 stores"},
      {"mall", "Food court combo offers"},
      {"gym", "First month free at PowerFit"},
      {"cinema", "Tuesday tickets at half price"},
      {"park", "Morning yoga classes nearby"},
      {"library", "Second-hand book fair"},
  };
  for (const auto& [category, title] : entries) {
    int discount = 10 + static_cast<int>(id % 4) * 10;
    inv.add(Ad{id++, category, title, discount});
  }
  return inv;
}

PlaceAds::PlaceAds(AdInventory inventory, Rng rng)
    : ConnectedApp("placeads"), inventory_(std::move(inventory)), rng_(rng) {
  judge_ = [this](const AdImpression& impression) {
    return default_judge(impression);
  };
}

std::vector<std::string> PlaceAds::target_categories(const std::string& label) {
  // Complementary targeting: what is worth advertising to someone *at* this
  // kind of place.
  if (label == "home") return {"market", "restaurant", "cinema"};
  if (label == "workplace" || label == "academic") return {"cafe", "restaurant"};
  if (label == "market") return {"market", "restaurant"};
  if (label == "mall") return {"mall", "cinema", "cafe"};
  if (label == "gym") return {"cafe", "restaurant"};
  if (label == "park") return {"park", "cafe"};
  if (label == "library") return {"library", "cafe"};
  if (label == "cafe" || label == "restaurant") return {"cinema", "mall"};
  if (label == "cinema") return {"restaurant", "cafe"};
  return {};
}

void PlaceAds::connect(core::PmwareMobileService& pms) {
  pms_ = &pms;
  core::IntentFilter filter;
  filter.actions = {core::actions::kPlaceEnter};
  receiver_ = pms.bus().register_receiver(
      filter, [this](const core::Intent& intent) { on_intent(intent); });

  core::PlaceAlertRequest request;
  request.app = name_;
  request.granularity = core::Granularity::Building;
  request.want_enter = true;
  request.want_exit = false;
  request.want_new_place = false;
  request.receiver = receiver_;
  pms.apps().register_place_alerts(std::move(request));
}

void PlaceAds::on_intent(const core::Intent& intent) {
  const SimTime t = intent.extras.get_int("t", 0);
  const auto place = static_cast<core::PlaceUid>(
      intent.extras.get_int("place_uid",
                            intent.extras.get_int("area_uid", 0)));
  if (place == core::kNoPlaceUid) return;

  // Throttle repeated impressions at the same place.
  const auto it = last_shown_.find(place);
  if (it != last_shown_.end() && t - it->second < min_repeat_gap_) return;
  last_shown_[place] = t;

  const std::string label = intent.extras.get_string("label", "");
  std::vector<const Ad*> candidates;
  bool targeted = false;
  for (const std::string& category : target_categories(label)) {
    const auto ads = inventory_.by_category(category);
    candidates.insert(candidates.end(), ads.begin(), ads.end());
  }
  if (!candidates.empty()) {
    targeted = true;
  } else {
    // Untagged or unknown place: shotgun an arbitrary ad.
    for (const Ad& ad : inventory_.all()) candidates.push_back(&ad);
  }
  if (candidates.empty()) return;
  const Ad& chosen = *candidates[rng_.index(candidates.size())];

  AdImpression impression{chosen, place, t, targeted, false};
  impression.liked = judge_(impression);
  impressions_.push_back(std::move(impression));
}

bool PlaceAds::default_judge(const AdImpression& impression) {
  // Calibrated so the aggregate like:dislike lands near the paper's 17:3
  // with the deployment's ~70% tagging rate: targeted ads are compelling,
  // shotgun ads much less so.
  return rng_.bernoulli(impression.targeted ? 0.96 : 0.71);
}

std::size_t PlaceAds::likes() const {
  return static_cast<std::size_t>(
      std::count_if(impressions_.begin(), impressions_.end(),
                    [](const AdImpression& i) { return i.liked; }));
}

std::size_t PlaceAds::dislikes() const { return impressions_.size() - likes(); }

std::pair<double, double> PlaceAds::ratio_of_twenty() const {
  if (impressions_.empty()) return {0, 0};
  const double like_share =
      static_cast<double>(likes()) / static_cast<double>(impressions_.size());
  return {like_share * 20.0, (1.0 - like_share) * 20.0};
}

}  // namespace pmware::apps
