#include "apps/todo_reminder.hpp"

namespace pmware::apps {

TodoReminder::TodoReminder(std::string tracked_label, DailyWindow window)
    : ConnectedApp("todo-reminder"),
      tracked_label_(std::move(tracked_label)),
      window_(window) {}

void TodoReminder::connect(core::PmwareMobileService& pms) {
  core::IntentFilter filter;
  filter.actions = {core::actions::kPlaceEnter, core::actions::kPlaceExit};
  receiver_ = pms.bus().register_receiver(
      filter, [this](const core::Intent& intent) { on_intent(intent); });

  // Step 1-2 of the §2.4 use case: building granularity, 9 AM - 6 PM.
  core::PlaceAlertRequest request;
  request.app = name_;
  request.granularity = core::Granularity::Building;
  request.window = window_;
  request.want_enter = true;
  request.want_exit = true;
  request.receiver = receiver_;
  pms.apps().register_place_alerts(std::move(request));
}

void TodoReminder::on_intent(const core::Intent& intent) {
  if (intent.extras.get_string("label", "") != tracked_label_) return;
  const bool entered = intent.action == core::actions::kPlaceEnter;
  const SimTime t = intent.extras.get_int("t", 0);
  const auto place =
      static_cast<core::PlaceUid>(intent.extras.get_int("place_uid", 0));

  if (entered) ++enter_alerts_;
  else ++exit_alerts_;

  for (const TodoItem& todo : todos_) {
    if (todo.on_enter != entered) continue;
    fired_.push_back({todo.text, place, t, entered});
  }
}

}  // namespace pmware::apps
