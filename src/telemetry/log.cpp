#include "telemetry/log.hpp"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace pmware::telemetry {

namespace {

const char* level_label(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Logger::write(LogLevel level, std::string_view component,
                   SimTime sim_time, std::string message) {
  if (level < log_level()) return;
  LogRecord record;
  record.level = level;
  record.component = std::string(component);
  record.message = std::move(message);
  record.sim_time = sim_time;
  record.wall_us = wall_now_us();
  // Correlate with the calling thread's innermost open span (if any) before
  // taking our own lock — the tracer's and the ring's mutexes never nest.
  const TraceContext ctx = tracer().current_context();
  if (ctx.valid()) {
    record.trace_id = ctx.trace_id;
    record.span_id = ctx.span_id;
  }
  registry()
      .counter("log_records_total", {{"level", level_label(level)}},
               "structured log records accepted, by level")
      .inc();
  bool echo;
  {
    const std::scoped_lock lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(record);
    } else if (capacity_ > 0) {
      ring_[next_ % capacity_] = record;
    }
    ++next_;
    ++total_;
    echo = echo_;
  }
  if (echo) log_line(level, record.component, record.message);
}

std::vector<LogRecord> Logger::recent() const {
  const std::scoped_lock lock(mu_);
  if (ring_.size() < capacity_ || capacity_ == 0) return ring_;
  // Full ring: slot next_ % capacity_ holds the oldest retained record.
  std::vector<LogRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % capacity_]);
  return out;
}

std::size_t Logger::total() const {
  const std::scoped_lock lock(mu_);
  return total_;
}

void Logger::reset() {
  const std::scoped_lock lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

Logger& logger() {
  static Logger instance;
  return instance;
}

namespace {

void vslog(LogLevel level, const char* component, SimTime sim_time,
           const char* fmt, va_list args) {
  if (level < log_level()) return;  // skip formatting below threshold
  char msg[1024];
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  logger().write(level, component, sim_time, msg);
}

}  // namespace

#define PMWARE_DEFINE_SLOG(name, level)                                     \
  void name(const char* component, SimTime sim_time, const char* fmt, ...) { \
    va_list args;                                                           \
    va_start(args, fmt);                                                    \
    vslog(level, component, sim_time, fmt, args);                           \
    va_end(args);                                                           \
  }

PMWARE_DEFINE_SLOG(slog_debug, LogLevel::Debug)
PMWARE_DEFINE_SLOG(slog_info, LogLevel::Info)
PMWARE_DEFINE_SLOG(slog_warn, LogLevel::Warn)
PMWARE_DEFINE_SLOG(slog_error, LogLevel::Error)

#undef PMWARE_DEFINE_SLOG

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

bool apply_log_level_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--log-level") != 0) continue;
    if (const auto level = parse_log_level(argv[i + 1])) {
      set_log_level(*level);
      return true;
    }
    std::fprintf(stderr, "unknown --log-level '%s' "
                 "(debug|info|warn|error|off)\n", argv[i + 1]);
    return false;
  }
  return true;
}

}  // namespace pmware::telemetry
