#include "telemetry/alerts.hpp"

#include <algorithm>
#include <map>

#include "telemetry/metrics.hpp"

namespace pmware::telemetry {

namespace {

/// Sentinel timestamp for the burn-rate install baseline: old enough to
/// fall at-or-before any real window horizon, far from SimTime overflow.
constexpr SimTime kInstallTime = -(std::int64_t{1} << 60);

}  // namespace

const char* to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::Threshold: return "threshold";
    case AlertKind::BurnRate: return "burn_rate";
    case AlertKind::Staleness: return "staleness";
  }
  return "?";
}

void AlertEngine::clear() {
  const std::scoped_lock lock(mu_);
  rules_.clear();
}

void AlertEngine::add_rule(AlertRule rule) {
  const std::scoped_lock lock(mu_);
  RuleState rs;
  rs.rule = std::move(rule);
  if (rs.rule.window <= 0) rs.rule.window = kSecondsPerDay;
  // Seed burn-rate history with the install-time value at the dawn of
  // time, so increments between install and the first evaluation count
  // toward the first window instead of vanishing into the baseline.
  if (rs.rule.kind == AlertKind::BurnRate)
    rs.history.emplace_back(kInstallTime, current_value(rs.rule));
  rules_.push_back(std::move(rs));
}

void AlertEngine::install_default_rules() {
  // Any breaker open within the trailing day: a participant's cloud sync is
  // degraded enough to trip the failure threshold.
  add_rule({"breaker-open", AlertKind::BurnRate, "net_breaker_open_total",
            0.0, kSecondsPerDay,
            "a circuit breaker opened within the trailing sim-day"});
  // Any outbox eviction ever is data loss; page immediately and latch.
  add_rule({"outbox-overflow", AlertKind::Threshold,
            "pms_outbox_evicted_total", 1.0, kSecondsPerDay,
            "outbox records evicted — durable sync lost data"});
  // SLO violations accumulating faster than ~1 per 10 sim-seconds across
  // the fleet burns the error budget.
  add_rule({"slo-burn", AlertKind::BurnRate, "cloud_slo_violations_total",
            0.1, kSecondsPerDay,
            "handler SLO violations exceed the error-budget burn rate"});
  // More than one wall-second of shard lock waiting per sim-day means the
  // shard count no longer matches the fan-in.
  add_rule({"shard-lock-wait", AlertKind::BurnRate,
            "cloud_shard_lock_wait_us", 1e6 / kSecondsPerDay, kSecondsPerDay,
            "cloud storage shard lock wait exceeds 1s per sim-day"});
  // No participant-day completed for a sim-day: the study stalled.
  add_rule({"study-progress", AlertKind::Staleness,
            "study_participant_days_total", 0.0, kSecondsPerDay,
            "no participant-day completed within the trailing sim-day"});
}

double AlertEngine::current_value(const AlertRule& rule) const {
  return registry().with_families(
      [&rule](const std::map<std::string, MetricFamily>& families) {
        const auto it = families.find(rule.family);
        if (it == families.end()) return 0.0;
        double total = 0;
        switch (it->second.kind) {
          case MetricKind::Counter:
            for (const auto& [labels, series] : it->second.counters)
              total += static_cast<double>(series->value());
            break;
          case MetricKind::Gauge:
            for (const auto& [labels, series] : it->second.gauges)
              total += series->value();
            break;
          case MetricKind::Histogram:
            for (const auto& [labels, series] : it->second.histograms)
              total += series->snapshot().stats.sum();
            break;
        }
        return total;
      });
}

void AlertEngine::evaluate_rule(RuleState& rs, SimTime now) {
  const AlertRule& rule = rs.rule;
  const double value = current_value(rule);
  bool firing = false;

  switch (rule.kind) {
    case AlertKind::Threshold:
      rs.state.value = value;
      firing = value >= rule.threshold;
      break;
    case AlertKind::BurnRate: {
      rs.history.emplace_back(now, value);
      // Baseline: the newest point at or before the window start; early in
      // a run the oldest point stands in (the fixed-window denominator
      // keeps that conservative).
      const SimTime horizon = now - rule.window;
      double baseline = rs.history.front().second;
      for (const auto& [t, v] : rs.history) {
        if (t > horizon) break;
        baseline = v;
      }
      // Prune strictly-older points, keeping one at/before the horizon so
      // the next evaluation still has its baseline.
      while (rs.history.size() > 1 && rs.history[1].first <= horizon)
        rs.history.pop_front();
      const double rate =
          (value - baseline) / static_cast<double>(rule.window);
      rs.state.value = rate;
      firing = rate > rule.threshold;
      break;
    }
    case AlertKind::Staleness: {
      if (!rs.seen || value > rs.last_value) rs.last_progress = now;
      const SimDuration age = now - rs.last_progress;
      rs.state.value = static_cast<double>(age);
      firing = rs.seen && age >= rule.window;
      break;
    }
  }
  rs.last_value = value;
  rs.seen = true;

  if (firing && !rs.state.firing) {
    rs.state.since = now;
    ++rs.state.fire_count;
    registry()
        .counter("alerts_fired_total", {{"rule", rule.name}},
                 "alert rule rising edges (resolved -> firing)")
        .inc();
  }
  rs.state.firing = firing;
  rs.state.last_eval = now;
}

void AlertEngine::evaluate(SimTime now) {
  const std::scoped_lock lock(mu_);
  for (RuleState& rs : rules_) evaluate_rule(rs, now);
}

std::vector<std::pair<AlertRule, AlertState>> AlertEngine::snapshot() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<AlertRule, AlertState>> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) out.emplace_back(rs.rule, rs.state);
  return out;
}

std::size_t AlertEngine::firing_count() const {
  const std::scoped_lock lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(rules_.begin(), rules_.end(),
                    [](const RuleState& rs) { return rs.state.firing; }));
}

Json AlertEngine::to_json() const {
  const std::scoped_lock lock(mu_);
  Json rules = Json::array();
  std::size_t firing = 0;
  for (const RuleState& rs : rules_) {
    Json r = Json::object();
    r.set("name", rs.rule.name);
    r.set("kind", to_string(rs.rule.kind));
    r.set("family", rs.rule.family);
    r.set("threshold", rs.rule.threshold);
    r.set("window_s", rs.rule.window);
    r.set("firing", rs.state.firing);
    r.set("value", rs.state.value);
    r.set("since", rs.state.since);
    r.set("fire_count", rs.state.fire_count);
    r.set("last_eval", rs.state.last_eval);
    if (!rs.rule.help.empty()) r.set("help", rs.rule.help);
    rules.push_back(std::move(r));
    if (rs.state.firing) ++firing;
  }
  Json out = Json::object();
  out.set("rules", std::move(rules));
  out.set("firing", static_cast<std::uint64_t>(firing));
  return out;
}

AlertEngine& alerts() {
  static AlertEngine instance;
  return instance;
}

}  // namespace pmware::telemetry
