// Declarative SLO alerting over the metrics registry.
//
// Rules watch one metric family each and are evaluated at every timeseries
// sample boundary (the deployment study calls evaluate() whenever the
// recorder takes a sample), in three kinds:
//
//  * Threshold — fires while the family's current value (counter family
//    total, gauge family sum, or histogram family sum) is >= threshold.
//    "outbox-overflow: any eviction ever is data loss."
//  * BurnRate — fires while the family's increase over the trailing
//    `window` of sim-time, divided by the window, exceeds `threshold`
//    (units: value per sim-second). "slo-burn: violations accumulating
//    faster than the error budget."
//  * Staleness — fires when the family has not increased for at least
//    `window` sim-seconds (and had at least one prior evaluation).
//    "study-progress: no participant-day finished in a sim-day."
//
// Each rising edge (resolved -> firing) increments
// alerts_fired_total{rule=<name>}; GET /alertz serves the live state.
//
// Determinism: evaluation points are sim-time slot boundaries and every
// window is sim-time, so for a given metric history the alert trajectory
// is reproducible — wall-clock never enters, and evaluating never mutates
// anything the study reads (the determinism guard asserts digests are
// unchanged with the engine on).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/simtime.hpp"

namespace pmware::telemetry {

enum class AlertKind { Threshold, BurnRate, Staleness };
const char* to_string(AlertKind kind);

struct AlertRule {
  std::string name;     ///< label value in alerts_fired_total{rule=...}
  AlertKind kind = AlertKind::Threshold;
  std::string family;   ///< watched metric family (any kind)
  /// Threshold: fire at value >= threshold. BurnRate: fire at
  /// delta/window > threshold (per sim-second). Staleness: unused.
  double threshold = 0;
  /// Trailing sim-time window for BurnRate and Staleness.
  SimDuration window = kSecondsPerDay;
  std::string help;
};

struct AlertState {
  bool firing = false;
  double value = 0;          ///< last evaluated value / burn rate / age
  SimTime since = 0;         ///< sim-time the current firing started
  std::uint64_t fire_count = 0;  ///< rising edges since configure
  SimTime last_eval = 0;
};

class AlertEngine {
 public:
  /// Drops every rule and its state. Each study run re-adds its rules.
  void clear();
  void add_rule(AlertRule rule);
  /// The default PMWare rule set: breaker-open, outbox-overflow, slo-burn,
  /// shard-lock-wait, study-progress (staleness).
  void install_default_rules();

  /// Evaluates every rule against the process-wide registry at sim-time
  /// `now`. Rising edges increment alerts_fired_total{rule}. Thread-safe;
  /// the study calls this from whichever worker took the timeseries
  /// sample.
  void evaluate(SimTime now);

  std::vector<std::pair<AlertRule, AlertState>> snapshot() const;
  std::size_t firing_count() const;

  /// {"rules": [{"name", "kind", "family", "threshold", "window_s",
  ///  "firing", "value", "since", "fire_count"}], "firing": N} — the
  ///  GET /alertz payload.
  Json to_json() const;

 private:
  struct RuleState {
    AlertRule rule;
    AlertState state;
    /// (sim_time, family value) history for BurnRate windows; Staleness
    /// keeps the last time the value increased in `last_progress`.
    std::deque<std::pair<SimTime, double>> history;
    double last_value = 0;
    SimTime last_progress = 0;
    bool seen = false;
  };

  double current_value(const AlertRule& rule) const;
  void evaluate_rule(RuleState& rs, SimTime now);

  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
};

/// The process-wide alert engine, evaluated by the deployment study and
/// served by the cloud's GET /alertz.
AlertEngine& alerts();

}  // namespace pmware::telemetry
