#include "telemetry/trace.hpp"

namespace pmware::telemetry {

std::size_t Tracer::open_span(std::string name, SimTime sim_now) {
  if (records_.size() >= max_records_) {
    ++dropped_;
    return SpanRecord::kNoParent;
  }
  SpanRecord record;
  record.name = std::move(name);
  record.id = records_.size();
  record.parent = open_.empty() ? SpanRecord::kNoParent : open_.back();
  record.depth = open_.size();
  record.sim_begin = sim_now;
  record.sim_end = sim_now;
  records_.push_back(std::move(record));
  open_.push_back(records_.size() - 1);
  return records_.size() - 1;
}

void Tracer::close_span(std::size_t index, SimTime sim_now,
                        std::int64_t wall_ns) {
  if (index == SpanRecord::kNoParent) return;
  SpanRecord& record = records_[index];
  record.sim_end = sim_now;
  record.wall_ns = wall_ns;
  record.finished = true;
  // Spans are RAII, so the one being closed is the innermost open one; a
  // dropped (at-capacity) child never made it onto the stack.
  if (!open_.empty() && open_.back() == index) open_.pop_back();
}

Span::Span(Tracer& tracer, std::string name, SimTime sim_now)
    : tracer_(tracer),
      index_(tracer.open_span(std::move(name), sim_now)),
      sim_begin_(sim_now),
      wall_begin_(std::chrono::steady_clock::now()) {}

void Span::finish(SimTime sim_now) {
  if (finished_) return;
  finished_ = true;
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_begin_)
                           .count();
  tracer_.close_span(index_, sim_now, wall_ns);
}

Span::~Span() {
  if (!finished_) finish(sim_begin_);
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace pmware::telemetry
