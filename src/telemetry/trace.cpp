#include "telemetry/trace.hpp"

namespace pmware::telemetry {

std::size_t Tracer::open_span(std::string name, SimTime sim_now,
                              TraceContext remote_parent) {
  const std::scoped_lock lock(mu_);
  if (records_.size() >= max_records_) {
    ++dropped_;
    return SpanRecord::kNoParent;
  }
  std::vector<std::size_t>& stack = open_[std::this_thread::get_id()];
  SpanRecord record;
  record.name = std::move(name);
  record.id = records_.size();
  if (remote_parent.valid() && remote_parent.span_id < records_.size()) {
    // Propagated context wins over the local stack: the handler span is a
    // child of the client span even if the serving thread has unrelated
    // spans open (it never does in-process, but the contract is the header).
    const SpanRecord& parent = records_[remote_parent.span_id];
    record.parent = remote_parent.span_id;
    record.depth = parent.depth + 1;
    record.trace_id = remote_parent.trace_id;
  } else if (!stack.empty()) {
    const SpanRecord& parent = records_[stack.back()];
    record.parent = stack.back();
    record.depth = parent.depth + 1;
    record.trace_id = parent.trace_id;
  } else {
    record.parent = SpanRecord::kNoParent;
    record.depth = 0;
    record.trace_id = next_trace_id_++;
  }
  record.sim_begin = sim_now;
  record.sim_end = sim_now;
  records_.push_back(std::move(record));
  stack.push_back(records_.size() - 1);
  return records_.size() - 1;
}

std::size_t Tracer::record_span(std::string name, SimTime sim_begin,
                                SimTime sim_end, std::int64_t wall_ns) {
  const std::scoped_lock lock(mu_);
  if (records_.size() >= max_records_) {
    ++dropped_;
    return SpanRecord::kNoParent;
  }
  const auto it = open_.find(std::this_thread::get_id());
  SpanRecord record;
  record.name = std::move(name);
  record.id = records_.size();
  if (it != open_.end() && !it->second.empty()) {
    const SpanRecord& parent = records_[it->second.back()];
    record.parent = it->second.back();
    record.depth = parent.depth + 1;
    record.trace_id = parent.trace_id;
  } else {
    record.parent = SpanRecord::kNoParent;
    record.depth = 0;
    record.trace_id = next_trace_id_++;
  }
  record.sim_begin = sim_begin;
  record.sim_end = sim_end;
  record.wall_ns = wall_ns;
  record.finished = true;
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

void Tracer::close_span(std::size_t index, SimTime sim_now,
                        std::int64_t wall_ns) {
  if (index == SpanRecord::kNoParent) return;
  const std::scoped_lock lock(mu_);
  SpanRecord& record = records_[index];
  record.sim_end = sim_now;
  record.wall_ns = wall_ns;
  record.finished = true;
  // Spans are RAII, so the one being closed is the innermost open one on
  // this thread; a dropped (at-capacity) child never made it onto the stack.
  const auto it = open_.find(std::this_thread::get_id());
  if (it != open_.end()) {
    if (!it->second.empty() && it->second.back() == index)
      it->second.pop_back();
    if (it->second.empty()) open_.erase(it);
  }
}

Span::Span(Tracer& tracer, std::string name, SimTime sim_now)
    : tracer_(tracer),
      index_(tracer.open_span(std::move(name), sim_now)),
      sim_begin_(sim_now),
      wall_begin_(std::chrono::steady_clock::now()) {}

Span::Span(Tracer& tracer, std::string name, SimTime sim_now,
           TraceContext parent)
    : tracer_(tracer),
      index_(tracer.open_span(std::move(name), sim_now, parent)),
      sim_begin_(sim_now),
      wall_begin_(std::chrono::steady_clock::now()) {}

void Span::finish(SimTime sim_now) {
  if (finished_) return;
  finished_ = true;
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_begin_)
                           .count();
  tracer_.close_span(index_, sim_now, wall_ns);
}

Span::~Span() {
  if (!finished_) finish(sim_begin_);
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace pmware::telemetry
