// Exporters: render the metrics registry (and tracer) for machines.
//
//  * Prometheus text — what the cloud instance serves on GET /metrics.
//  * JSON (util/json.hpp) — what benches dump with --json, producing the
//    BENCH_*.json trajectory files; parses back via Json::parse.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"

namespace pmware::telemetry {

/// Prometheus exposition text: "# HELP"/"# TYPE" headers per family, one
/// "name{label=\"v\"} value" line per series; histograms expand into
/// cumulative _bucket{le=...} lines plus _sum and _count.
std::string to_prometheus(const MetricsRegistry& reg);

/// {"metrics": {name: {"kind":..., "help":..., "series":[{"labels":{...},
/// "value"|"count"/"sum"/"buckets":...}]}}}
Json to_json(const MetricsRegistry& reg);

/// Finished spans as a JSON array (start order, parents before children).
Json spans_to_json(const Tracer& tracer);

// --- bench --json support -------------------------------------------------

/// Parses "--json [path]" out of argv. Returns the explicit path, the
/// default "BENCH_<bench_name>.json" when --json is given bare, or "" when
/// the flag is absent.
std::string bench_json_path(int argc, char** argv,
                            const std::string& bench_name);

/// Writes {"bench": name, "results": extra, "metrics": ..., "spans": [...]}
/// from the process-wide registry/tracer to `path`. Returns false (with a
/// log line) on I/O failure.
bool write_bench_json(const std::string& path, const std::string& bench_name,
                      Json extra = Json::object());

}  // namespace pmware::telemetry
