// Exporters: render the metrics registry (and tracer) for machines.
//
//  * Prometheus text — what the cloud instance serves on GET /metrics.
//  * JSON (util/json.hpp) — what benches dump with --json, producing the
//    BENCH_*.json trajectory files; parses back via Json::parse.
//  * Flame folds and slowest-trace trees — what /tracez serves and the
//    deployment-study bench embeds per simulated day.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"

namespace pmware::telemetry {

/// Prometheus exposition text: "# HELP"/"# TYPE" headers per family, one
/// "name{label=\"v\"} value" line per series; histograms expand into
/// cumulative _bucket{le=...} lines plus _sum and _count. Label values and
/// help text are escaped per the exposition format.
std::string to_prometheus(const MetricsRegistry& reg);

/// {"metrics": {name: {"kind":..., "help":..., "series":[{"labels":{...},
/// "value"|"count"/"sum"/"buckets":...}]}}}
Json to_json(const MetricsRegistry& reg);

/// Finished spans as a JSON array (start order, parents before children),
/// each with its trace_id so consumers can regroup causal trees.
Json spans_to_json(const Tracer& tracer);

/// Folded flame stacks grouped by simulated day of each span's sim_begin:
/// [{"day": D, "stacks": {"root;child;leaf": self_wall_us, ...}}, ...].
/// Self wall time is the span's wall cost minus its children's, clamped at
/// zero — the classic folded-stack format, renderable by any flamegraph
/// tool. Takes a snapshot (records or snapshot()) so callers pick their
/// synchronization.
Json flame_by_day(const std::vector<SpanRecord>& spans);

/// The N slowest traces (by root-span wall time), each as
/// {"trace_id", "root", "wall_us", "sim_begin", "sim_duration_s",
///  "span_count", "spans": [...]}. At most `max_spans_per_trace` spans are
/// embedded per trace (record order, parents first); "spans_truncated" is
/// set when the cap bites. Serves GET /tracez.
Json slowest_traces_json(const std::vector<SpanRecord>& spans, std::size_t n,
                         std::size_t max_spans_per_trace = 200);

/// Human-readable post-run digest for examples and studyctl: span/trace
/// totals, the slowest trace, SLO violation count, and log-ring occupancy.
std::string diagnostics_summary(const Tracer& tracer,
                                const MetricsRegistry& reg);

// --- bench --json support -------------------------------------------------

/// Current layout of the BENCH_*.json documents ("schema_version"). History:
/// 1 = PR 1/2 (bench/results/metrics/spans), 2 = adds schema_version, the
/// "run" metadata block, per-day "flame" folds, and span trace_ids, 3 =
/// adds the deployment-study "shard_sweep" block (per-configuration
/// contention telemetry from the sharded cloud storage), 4 = adds the
/// deployment-study "fault_sweep" block (recovery-equivalence digests and
/// sync-reliability counters under scripted cloud fault plans), 5 = adds
/// the deployment-study "cache_sweep" block (cache-on vs cache-off digests,
/// request/recluster collapse, hit taxonomy, and the conditional-transfer
/// microbenchmarks), 6 = adds the deployment-study "scheduler_sweep" block
/// (run-generation dispatch microbench and before/after scheduler.run
/// flame self-time), 7 = adds the "timeseries" block (per-sim-interval
/// counter deltas and gauge values from the sim-time series recorder), the
/// "process" block (RSS / peak RSS / CPU sampled at export), and the
/// pmware_build_info gauge in "metrics", 8 = adds the deployment-study
/// "population_sweep" block (streaming-runner scale ladder: wall time,
/// participant-days/sec, peak RSS, cloud request rate, and per-shard
/// request heat at N = 16 / 1k / 10k / 100k), 9 = adds the
/// deployment-study "chaos_sweep" block (device-lifecycle chaos: crash/
/// restart injection, privacy wipes, and late joins, with determinism
/// digests per shards x threads x cache x runner shape, wipe-tombstone
/// counters, and checkpoint-size / restore-latency distributions).
inline constexpr int kBenchSchemaVersion = 9;

/// Reproducibility metadata embedded in every BENCH_*.json, so the perf
/// trajectory stays comparable across PRs. Zero fields mean "not
/// applicable" for the bench and are still emitted.
struct RunMeta {
  std::uint64_t seed = 0;
  int threads = 0;
  int sim_days = 0;
};

/// `git describe --always --dirty` of the working tree, or "" when git (or
/// the repo) is unavailable.
std::string git_describe();

/// Registers the pmware_build_info gauge (value 1; labels: version,
/// git_describe, compiler, sanitizer) in `reg` if absent, so every
/// /metrics scrape and bench JSON self-identifies the build. Idempotent;
/// called by the cloud's /metrics handler and write_bench_json. Survives
/// reset() by re-registering on the next scrape.
void ensure_build_info(MetricsRegistry& reg);

/// Parses "--json [path]" out of argv. Returns the explicit path, the
/// default "BENCH_<bench_name>.json" when --json is given bare, or "" when
/// the flag is absent.
std::string bench_json_path(int argc, char** argv,
                            const std::string& bench_name);

/// Writes {"schema_version": ..., "bench": name, "run": {...}, "results":
/// extra, "metrics": ..., "timeseries": {...}, "process": {...},
/// "spans": [...], "flame": [...]} from the process-wide
/// registry/tracer/recorder to `path`. Returns false (with a log line)
/// on I/O failure.
bool write_bench_json(const std::string& path, const std::string& bench_name,
                      Json extra = Json::object(), RunMeta meta = {});

}  // namespace pmware::telemetry
