// Sim-time series recorder: how the metrics evolve over a study.
//
// The registry answers "what are the totals now"; this recorder answers
// "how did we get there". At a configurable sim-interval (default one
// sim-day) it samples a tracked set of counter families (as deltas since
// the previous sample) and gauge families (as point-in-time values) into a
// bounded ring, so a 100k-participant, multi-week study keeps a fixed
// memory footprint no matter how long it runs. Process gauges
// (telemetry/process.hpp) are refreshed on every sample, so RSS/CPU ride
// along for free.
//
// Time axis: samples are keyed to *sim* time, never wall-clock. The
// deployment study advances the recorder with fleet-progress time
// (completed participant-days scaled to sim-seconds), which crosses each
// interval boundary exactly once per simulated fleet-day regardless of
// thread count or participant interleaving. Crossing detection is
// thread-safe and at-most-once per slot: whichever worker crosses first
// takes the sample.
//
// Determinism: the recorder only *reads* metrics — it never touches RNG
// streams or sim-time ordering, so enabling it cannot perturb study
// results (the determinism guard in tests/test_alerting.cpp and the ci.sh
// golden-digest gate both assert the content digest is byte-identical
// with the recorder on).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/simtime.hpp"

namespace pmware::telemetry {

struct TimeSeriesConfig {
  bool enabled = true;
  /// Sim-seconds between samples. Finer than the study's progress quantum
  /// (one participant-day) still samples at most once per quantum.
  SimDuration interval = kSecondsPerDay;
  /// Ring bound: oldest points are evicted once this many are retained.
  std::size_t capacity = 512;
};

/// One sampled point: counter deltas over the preceding interval plus
/// gauge values at the boundary, in tracked-series order.
struct TimeSeriesPoint {
  SimTime sim_time = 0;
  std::vector<double> values;
};

class TimeSeriesRecorder {
 public:
  /// Applies config and clears all points, tracked series, and slot state —
  /// each study run starts a fresh series. Thread-safe.
  void configure(const TimeSeriesConfig& config);
  TimeSeriesConfig config() const;

  /// Tracks a counter family: each sample records family_total() minus the
  /// total at the previous sample (the per-interval rate numerator).
  void track_counter(const std::string& family);
  /// Tracks a gauge family: each sample records the sum of the family's
  /// series values at the sample boundary.
  void track_gauge(const std::string& family);

  /// Crossing detection: samples once per interval boundary passed since
  /// the last sample, stamped at the boundary. Returns true iff this call
  /// took a sample (the caller that advanced the clock past the boundary —
  /// the study uses that to trigger alert evaluation exactly once per
  /// sample). No-op while disabled.
  bool advance(SimTime now);

  /// Tracked series names, in recorded-value order.
  std::vector<std::string> series_names() const;
  std::vector<TimeSeriesPoint> points() const;
  std::size_t dropped() const;

  /// {"interval_s": ..., "capacity": ..., "dropped": ..., "series": [names],
  ///  "points": [{"t": sim_time, "values": [...]}]} — the GET /timeseries
  ///  payload and the bench JSON "timeseries" block.
  Json to_json() const;

 private:
  struct Tracked {
    std::string family;
    bool is_counter = true;
    std::uint64_t prev_total = 0;  ///< counter total at the previous sample
  };

  void sample_locked(SimTime stamp);

  mutable std::mutex mu_;
  TimeSeriesConfig config_;
  std::vector<Tracked> tracked_;
  std::deque<TimeSeriesPoint> points_;
  std::int64_t last_slot_ = 0;  ///< highest interval index already sampled
  std::size_t dropped_ = 0;     ///< points evicted at the ring bound
};

/// The process-wide recorder, sampled by the deployment study and served
/// by the cloud's GET /timeseries.
TimeSeriesRecorder& timeseries();

}  // namespace pmware::telemetry
