#include "telemetry/export.hpp"

#include <cstring>
#include <fstream>

#include "util/logging.hpp"
#include "util/strfmt.hpp"

namespace pmware::telemetry {

namespace {

/// Prometheus label values: escape backslash, double-quote, newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// {k="v",...} rendering; `extra` appends one more pair (used for le=).
std::string label_block(const LabelSet& labels,
                        const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape_label(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

std::string format_number(double v) {
  std::string s = strfmt("%.10g", v);
  return s;
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& reg) {
  // Iterate under the registry lock so concurrent series registration (the
  // parallel study's worker threads) cannot invalidate the maps mid-scrape.
  return reg.with_families([](const std::map<std::string, MetricFamily>&
                                  families) {
    std::string out;
    for (const auto& [name, family] : families) {
      if (!family.help.empty())
        out += "# HELP " + name + " " + family.help + "\n";
      out += "# TYPE " + name + " " + to_string(family.kind) + "\n";
      switch (family.kind) {
        case MetricKind::Counter:
          for (const auto& [labels, series] : family.counters)
            out += name + label_block(labels) + " " +
                   strfmt("%llu", static_cast<unsigned long long>(
                                      series->value())) +
                   "\n";
          break;
        case MetricKind::Gauge:
          for (const auto& [labels, series] : family.gauges)
            out += name + label_block(labels) + " " +
                   format_number(series->value()) + "\n";
          break;
        case MetricKind::Histogram:
          for (const auto& [labels, series] : family.histograms) {
            const HistogramMetric::Snapshot snap = series->snapshot();
            const Histogram& h = snap.buckets;
            // Lazily materialize bucket series: only buckets that have
            // seen observations get a line (cumulative counts stay exact
            // because skipped buckets contribute nothing), plus the
            // mandatory +Inf. A zero-count route costs 3 lines, not 23.
            std::size_t cumulative = 0;
            for (std::size_t b = 0; b < h.bucket_count(); ++b) {
              if (h.count(b) == 0) continue;
              cumulative += h.count(b);
              out += name + "_bucket" +
                     label_block(labels, "le", format_number(h.bucket_hi(b))) +
                     " " + strfmt("%zu", cumulative) + "\n";
            }
            out += name + "_bucket" + label_block(labels, "le", "+Inf") + " " +
                   strfmt("%zu", h.total()) + "\n";
            out += name + "_sum" + label_block(labels) + " " +
                   format_number(snap.stats.sum()) + "\n";
            out += name + "_count" + label_block(labels) + " " +
                   strfmt("%zu", h.total()) + "\n";
          }
          break;
      }
    }
    return out;
  });
}

Json to_json(const MetricsRegistry& reg) {
  Json metrics = Json::object();
  reg.with_families([&metrics](
                        const std::map<std::string, MetricFamily>& families) {
    for (const auto& [name, family] : families) {
    Json fam = Json::object();
    fam.set("kind", to_string(family.kind));
    if (!family.help.empty()) fam.set("help", family.help);
    Json series_arr = Json::array();
    auto labels_json = [](const LabelSet& labels) {
      Json o = Json::object();
      for (const auto& [k, v] : labels) o.set(k, v);
      return o;
    };
    switch (family.kind) {
      case MetricKind::Counter:
        for (const auto& [labels, series] : family.counters) {
          Json s = Json::object();
          s.set("labels", labels_json(labels));
          s.set("value", series->value());
          series_arr.push_back(std::move(s));
        }
        break;
      case MetricKind::Gauge:
        for (const auto& [labels, series] : family.gauges) {
          Json s = Json::object();
          s.set("labels", labels_json(labels));
          s.set("value", series->value());
          series_arr.push_back(std::move(s));
        }
        break;
      case MetricKind::Histogram:
        for (const auto& [labels, series] : family.histograms) {
          const HistogramMetric::Snapshot snap = series->snapshot();
          const Histogram& h = snap.buckets;
          Json s = Json::object();
          s.set("labels", labels_json(labels));
          s.set("count", static_cast<std::uint64_t>(h.total()));
          s.set("sum", snap.stats.sum());
          s.set("mean", snap.stats.mean());
          s.set("min", snap.stats.min());
          s.set("max", snap.stats.max());
          // Sparse buckets: empty ones are implicit (lo/hi identify each
          // emitted bucket), so zero-count routes carry no bucket payload.
          Json buckets = Json::array();
          for (std::size_t b = 0; b < h.bucket_count(); ++b) {
            if (h.count(b) == 0) continue;
            Json bucket = Json::object();
            bucket.set("lo", h.bucket_lo(b));
            bucket.set("hi", h.bucket_hi(b));
            bucket.set("count", static_cast<std::uint64_t>(h.count(b)));
            buckets.push_back(std::move(bucket));
          }
          s.set("buckets", std::move(buckets));
          series_arr.push_back(std::move(s));
        }
        break;
    }
    fam.set("series", std::move(series_arr));
    metrics.set(name, std::move(fam));
    }
  });
  Json out = Json::object();
  out.set("metrics", std::move(metrics));
  return out;
}

Json spans_to_json(const Tracer& tracer) {
  Json arr = Json::array();
  for (const SpanRecord& record : tracer.snapshot()) {
    Json s = Json::object();
    s.set("name", record.name);
    s.set("id", static_cast<std::uint64_t>(record.id));
    if (record.parent != SpanRecord::kNoParent)
      s.set("parent", static_cast<std::uint64_t>(record.parent));
    s.set("depth", static_cast<std::uint64_t>(record.depth));
    s.set("sim_begin", record.sim_begin);
    s.set("sim_end", record.sim_end);
    s.set("wall_ns", record.wall_ns);
    s.set("finished", record.finished);
    arr.push_back(std::move(s));
  }
  return arr;
}

std::string bench_json_path(int argc, char** argv,
                            const std::string& bench_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 < argc && argv[i + 1][0] != '-') return argv[i + 1];
    return "BENCH_" + bench_name + ".json";
  }
  return "";
}

bool write_bench_json(const std::string& path, const std::string& bench_name,
                      Json extra) {
  Json doc = to_json(registry());
  doc.set("bench", bench_name);
  doc.set("results", std::move(extra));
  doc.set("spans", spans_to_json(tracer()));
  std::ofstream out(path);
  if (!out) {
    log_warn("telemetry", "cannot open %s for writing", path.c_str());
    return false;
  }
  out << doc.pretty() << "\n";
  log_info("telemetry", "wrote %s", path.c_str());
  return out.good();
}

}  // namespace pmware::telemetry
