#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "telemetry/log.hpp"
#include "telemetry/process.hpp"
#include "telemetry/timeseries.hpp"
#include "util/strfmt.hpp"

namespace pmware::telemetry {

namespace {

/// Prometheus label values: escape backslash, double-quote, newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Prometheus HELP text: the exposition format escapes backslash and
/// newline there (double quotes stay literal — help is not quoted).
std::string escape_help(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// {k="v",...} rendering; `extra` appends one more pair (used for le=).
std::string label_block(const LabelSet& labels,
                        const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape_label(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + escape_label(extra_value) + "\"";
  }
  out += '}';
  return out;
}

std::string format_number(double v) {
  std::string s = strfmt("%.10g", v);
  return s;
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& reg) {
  // Iterate under the registry lock so concurrent series registration (the
  // parallel study's worker threads) cannot invalidate the maps mid-scrape.
  return reg.with_families([](const std::map<std::string, MetricFamily>&
                                  families) {
    std::string out;
    for (const auto& [name, family] : families) {
      if (!family.help.empty())
        out += "# HELP " + name + " " + escape_help(family.help) + "\n";
      out += "# TYPE " + name + " " + to_string(family.kind) + "\n";
      switch (family.kind) {
        case MetricKind::Counter:
          for (const auto& [labels, series] : family.counters)
            out += name + label_block(labels) + " " +
                   strfmt("%llu", static_cast<unsigned long long>(
                                      series->value())) +
                   "\n";
          break;
        case MetricKind::Gauge:
          for (const auto& [labels, series] : family.gauges)
            out += name + label_block(labels) + " " +
                   format_number(series->value()) + "\n";
          break;
        case MetricKind::Histogram:
          for (const auto& [labels, series] : family.histograms) {
            const HistogramMetric::Snapshot snap = series->snapshot();
            const Histogram& h = snap.buckets;
            // Lazily materialize bucket series: only buckets that have
            // seen observations get a line (cumulative counts stay exact
            // because skipped buckets contribute nothing), plus the
            // mandatory +Inf. A zero-count route costs 3 lines, not 23.
            std::size_t cumulative = 0;
            for (std::size_t b = 0; b < h.bucket_count(); ++b) {
              if (h.count(b) == 0) continue;
              cumulative += h.count(b);
              out += name + "_bucket" +
                     label_block(labels, "le", format_number(h.bucket_hi(b))) +
                     " " + strfmt("%zu", cumulative) + "\n";
            }
            out += name + "_bucket" + label_block(labels, "le", "+Inf") + " " +
                   strfmt("%zu", h.total()) + "\n";
            out += name + "_sum" + label_block(labels) + " " +
                   format_number(snap.stats.sum()) + "\n";
            out += name + "_count" + label_block(labels) + " " +
                   strfmt("%zu", h.total()) + "\n";
          }
          break;
      }
    }
    return out;
  });
}

Json to_json(const MetricsRegistry& reg) {
  Json metrics = Json::object();
  reg.with_families([&metrics](
                        const std::map<std::string, MetricFamily>& families) {
    for (const auto& [name, family] : families) {
    Json fam = Json::object();
    fam.set("kind", to_string(family.kind));
    if (!family.help.empty()) fam.set("help", family.help);
    Json series_arr = Json::array();
    auto labels_json = [](const LabelSet& labels) {
      Json o = Json::object();
      for (const auto& [k, v] : labels) o.set(k, v);
      return o;
    };
    switch (family.kind) {
      case MetricKind::Counter:
        for (const auto& [labels, series] : family.counters) {
          Json s = Json::object();
          s.set("labels", labels_json(labels));
          s.set("value", series->value());
          series_arr.push_back(std::move(s));
        }
        break;
      case MetricKind::Gauge:
        for (const auto& [labels, series] : family.gauges) {
          Json s = Json::object();
          s.set("labels", labels_json(labels));
          s.set("value", series->value());
          series_arr.push_back(std::move(s));
        }
        break;
      case MetricKind::Histogram:
        for (const auto& [labels, series] : family.histograms) {
          const HistogramMetric::Snapshot snap = series->snapshot();
          const Histogram& h = snap.buckets;
          Json s = Json::object();
          s.set("labels", labels_json(labels));
          s.set("count", static_cast<std::uint64_t>(h.total()));
          s.set("sum", snap.stats.sum());
          s.set("mean", snap.stats.mean());
          s.set("min", snap.stats.min());
          s.set("max", snap.stats.max());
          // Sparse buckets: empty ones are implicit (lo/hi identify each
          // emitted bucket), so zero-count routes carry no bucket payload.
          Json buckets = Json::array();
          for (std::size_t b = 0; b < h.bucket_count(); ++b) {
            if (h.count(b) == 0) continue;
            Json bucket = Json::object();
            bucket.set("lo", h.bucket_lo(b));
            bucket.set("hi", h.bucket_hi(b));
            bucket.set("count", static_cast<std::uint64_t>(h.count(b)));
            buckets.push_back(std::move(bucket));
          }
          s.set("buckets", std::move(buckets));
          series_arr.push_back(std::move(s));
        }
        break;
    }
    fam.set("series", std::move(series_arr));
    metrics.set(name, std::move(fam));
    }
  });
  Json out = Json::object();
  out.set("metrics", std::move(metrics));
  return out;
}

namespace {

Json span_record_json(const SpanRecord& record) {
  Json s = Json::object();
  s.set("name", record.name);
  s.set("id", static_cast<std::uint64_t>(record.id));
  if (record.parent != SpanRecord::kNoParent)
    s.set("parent", static_cast<std::uint64_t>(record.parent));
  s.set("depth", static_cast<std::uint64_t>(record.depth));
  s.set("trace_id", record.trace_id);
  s.set("sim_begin", record.sim_begin);
  s.set("sim_end", record.sim_end);
  s.set("wall_ns", record.wall_ns);
  s.set("finished", record.finished);
  return s;
}

}  // namespace

Json spans_to_json(const Tracer& tracer) {
  Json arr = Json::array();
  for (const SpanRecord& record : tracer.snapshot())
    arr.push_back(span_record_json(record));
  return arr;
}

Json flame_by_day(const std::vector<SpanRecord>& spans) {
  // Children subtract from their parent so every stack carries *self* wall
  // time; a parent's record index is always below its children's, so one
  // forward pass can both accumulate child costs (backward below) and build
  // semicolon-joined name paths.
  std::vector<std::int64_t> child_wall(spans.size(), 0);
  for (const SpanRecord& s : spans)
    if (s.parent != SpanRecord::kNoParent && s.parent < s.id)
      child_wall[s.parent] += s.wall_ns;

  std::vector<std::string> paths(spans.size());
  std::map<std::int64_t, std::map<std::string, double>> days;
  for (const SpanRecord& s : spans) {
    const bool parented = s.parent != SpanRecord::kNoParent && s.parent < s.id;
    paths[s.id] = parented ? paths[s.parent] + ";" + s.name : s.name;
    const std::int64_t self_ns = std::max<std::int64_t>(
        0, s.wall_ns - child_wall[s.id]);
    days[day_of(s.sim_begin)][paths[s.id]] +=
        static_cast<double>(self_ns) / 1000.0;
  }

  Json out = Json::array();
  for (const auto& [day, stacks] : days) {
    Json entry = Json::object();
    entry.set("day", day);
    Json folded = Json::object();
    for (const auto& [path, us] : stacks) folded.set(path, us);
    entry.set("stacks", std::move(folded));
    out.push_back(std::move(entry));
  }
  return out;
}

Json slowest_traces_json(const std::vector<SpanRecord>& spans, std::size_t n,
                         std::size_t max_spans_per_trace) {
  // Group record indices by trace; the first (lowest-index) root of a trace
  // is its defining span, and its wall cost ranks the trace.
  struct TraceGroup {
    std::size_t root = SpanRecord::kNoParent;
    std::vector<std::size_t> members;
  };
  std::map<std::uint64_t, TraceGroup> traces;
  for (const SpanRecord& s : spans) {
    TraceGroup& group = traces[s.trace_id];
    group.members.push_back(s.id);
    if (s.parent == SpanRecord::kNoParent &&
        group.root == SpanRecord::kNoParent)
      group.root = s.id;
  }

  std::vector<const std::pair<const std::uint64_t, TraceGroup>*> ranked;
  ranked.reserve(traces.size());
  for (const auto& entry : traces) {
    if (entry.second.root == SpanRecord::kNoParent) continue;  // orphans
    ranked.push_back(&entry);
  }
  std::sort(ranked.begin(), ranked.end(), [&spans](const auto* a, const auto* b) {
    const std::int64_t wa = spans[a->second.root].wall_ns;
    const std::int64_t wb = spans[b->second.root].wall_ns;
    if (wa != wb) return wa > wb;
    return a->first < b->first;  // deterministic tie-break
  });
  if (ranked.size() > n) ranked.resize(n);

  Json out = Json::array();
  for (const auto* entry : ranked) {
    const SpanRecord& root = spans[entry->second.root];
    Json t = Json::object();
    t.set("trace_id", entry->first);
    t.set("root", root.name);
    t.set("wall_us", static_cast<double>(root.wall_ns) / 1000.0);
    t.set("sim_begin", root.sim_begin);
    t.set("sim_duration_s", root.sim_duration());
    t.set("span_count",
          static_cast<std::uint64_t>(entry->second.members.size()));
    Json members = Json::array();
    for (std::size_t i = 0;
         i < entry->second.members.size() && i < max_spans_per_trace; ++i)
      members.push_back(span_record_json(spans[entry->second.members[i]]));
    if (entry->second.members.size() > max_spans_per_trace)
      t.set("spans_truncated", true);
    t.set("spans", std::move(members));
    out.push_back(std::move(t));
  }
  return out;
}

std::string diagnostics_summary(const Tracer& tracer,
                                const MetricsRegistry& reg) {
  const std::vector<SpanRecord> spans = tracer.snapshot();
  std::map<std::uint64_t, std::size_t> trace_sizes;
  const SpanRecord* slowest = nullptr;
  for (const SpanRecord& s : spans) {
    ++trace_sizes[s.trace_id];
    if (s.parent != SpanRecord::kNoParent) continue;
    if (slowest == nullptr || s.wall_ns > slowest->wall_ns) slowest = &s;
  }

  std::string out = "--- diagnostics ---\n";
  out += strfmt("traces: %zu spans across %zu traces (%zu dropped at cap)\n",
                spans.size(), trace_sizes.size(), tracer.dropped());
  if (slowest != nullptr) {
    out += strfmt("slowest trace: %s — %.2f ms wall, %s sim, %zu spans "
                  "(trace %llu)\n",
                  slowest->name.c_str(),
                  static_cast<double>(slowest->wall_ns) / 1e6,
                  format_duration(slowest->sim_duration()).c_str(),
                  trace_sizes[slowest->trace_id],
                  static_cast<unsigned long long>(slowest->trace_id));
  }
  const std::uint64_t violations = reg.family_total("cloud_slo_violations_total");
  const std::uint64_t requests = reg.family_total("cloud_requests_total");
  out += strfmt("cloud SLO violations: %llu of %llu requests\n",
                static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(requests));
  const Logger& lg = logger();
  out += strfmt("log ring: %zu records retained (%zu logged, capacity %zu)\n",
                lg.recent().size(), lg.total(), lg.capacity());
  return out;
}

std::string bench_json_path(int argc, char** argv,
                            const std::string& bench_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 < argc && argv[i + 1][0] != '-') return argv[i + 1];
    return "BENCH_" + bench_name + ".json";
  }
  return "";
}

std::string git_describe() {
#if defined(_WIN32)
  return "";
#else
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  return out;
#endif
}

void ensure_build_info(MetricsRegistry& reg) {
#if defined(__SANITIZE_ADDRESS__)
  const char* sanitizer = "address";
#elif defined(__SANITIZE_THREAD__)
  const char* sanitizer = "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  const char* sanitizer = "address";
#elif __has_feature(thread_sanitizer)
  const char* sanitizer = "thread";
#else
  const char* sanitizer = "none";
#endif
#else
  const char* sanitizer = "none";
#endif
#if defined(__VERSION__)
  const char* compiler = __VERSION__;
#else
  const char* compiler = "unknown";
#endif
  // git_describe shells out; compute the label set once and reuse it.
  // After a reset() the family is simply re-registered on the next call.
  static const LabelSet labels = [sanitizer, compiler] {
    LabelSet l;
    l["version"] = "PMWare/1.0";
    const std::string describe = git_describe();
    l["git_describe"] = describe.empty() ? "unknown" : describe;
    l["compiler"] = compiler;
    l["sanitizer"] = sanitizer;
    return l;
  }();
  reg.gauge("pmware_build_info", labels,
            "build identity (always 1; the labels carry the information)")
      .set(1.0);
}

bool write_bench_json(const std::string& path, const std::string& bench_name,
                      Json extra, RunMeta meta) {
  ensure_build_info(registry());
  const ProcessStats proc = sample_process_stats(registry());
  Json doc = Json::object();
  doc.set("schema_version",
          static_cast<std::int64_t>(kBenchSchemaVersion));
  doc.set("bench", bench_name);

  Json run = Json::object();
  run.set("seed", meta.seed);
  run.set("threads", static_cast<std::int64_t>(meta.threads));
  run.set("sim_days", static_cast<std::int64_t>(meta.sim_days));
  const std::string describe = git_describe();
  if (!describe.empty()) run.set("git_describe", describe);
  doc.set("run", std::move(run));

  doc.set("results", std::move(extra));
  doc.set("metrics", to_json(registry()).at("metrics"));
  doc.set("timeseries", timeseries().to_json());
  Json process = Json::object();
  process.set("rss_bytes", proc.rss_bytes);
  process.set("peak_rss_bytes", proc.peak_rss_bytes);
  process.set("cpu_seconds", proc.cpu_seconds);
  doc.set("process", std::move(process));
  const std::vector<SpanRecord> spans = tracer().snapshot();
  Json span_arr = Json::array();
  for (const SpanRecord& record : spans)
    span_arr.push_back(span_record_json(record));
  doc.set("spans", std::move(span_arr));
  doc.set("flame", flame_by_day(spans));

  std::ofstream out(path);
  if (!out) {
    slog_warn("telemetry", 0, "cannot open %s for writing", path.c_str());
    return false;
  }
  out << doc.pretty() << "\n";
  slog_info("telemetry", 0, "wrote %s", path.c_str());
  return out.good();
}

}  // namespace pmware::telemetry
