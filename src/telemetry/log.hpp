// Structured leveled logging: the telemetry-grade replacement for the
// ad-hoc util/logging stderr printfs.
//
// Every record is dual-clock stamped (sim time from the caller, wall time
// from the system clock) and trace-correlated: the logger asks the tracer
// for the calling thread's innermost open span, so a warning emitted inside
// a GCA-offload request carries that request's trace_id and can be joined
// against /tracez output. Records land in a bounded ring buffer (recent()
// exposes them to the diagnostics endpoints) and are mirrored to stderr
// through util/logging's writer, which also owns the process-wide threshold
// — set_log_level() / --log-level control both paths with one knob.
//
// Thread-safety: the ring is guarded by its own mutex, level checks go
// through util/logging's atomic, and per-level counters live in the metrics
// registry — same discipline as the PR-2 metrics cells, so the parallel
// deployment study can log from every worker.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.hpp"
#include "util/simtime.hpp"

namespace pmware::telemetry {

struct LogRecord {
  LogLevel level = LogLevel::Info;
  std::string component;
  std::string message;
  SimTime sim_time = 0;
  std::int64_t wall_us = 0;     ///< microseconds since the Unix epoch
  std::uint64_t trace_id = 0;   ///< 0 when no span was open on the thread
  std::size_t span_id = 0;      ///< meaningful only when trace_id != 0
};

/// Ring-buffered structured logger. The threshold is util/logging's global
/// level; records below it are dropped before any formatting cost.
class Logger {
 public:
  explicit Logger(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Records one entry (if `level` passes the threshold) and mirrors it to
  /// stderr via log_line unless echo is disabled.
  void write(LogLevel level, std::string_view component, SimTime sim_time,
             std::string message);

  /// Oldest-first copy of the retained records, taken under the lock.
  std::vector<LogRecord> recent() const;

  /// Records accepted since construction/reset (retained + overwritten).
  std::size_t total() const;

  std::size_t capacity() const { return capacity_; }

  /// Silences the stderr mirror (benches that own stdout); the ring still
  /// fills so diagnostics stay available.
  void set_echo(bool echo) { echo_ = echo; }

  void reset();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<LogRecord> ring_;  ///< grows to capacity_, then wraps
  std::size_t next_ = 0;         ///< ring_ slot the next record lands in
  std::size_t total_ = 0;
  bool echo_ = true;
};

/// The process-wide logger, sibling of registry() and tracer().
Logger& logger();

/// Sim-time-stamped printf-style entry points. These supersede util/logging's
/// log_* helpers at middleware call sites: same stderr output, plus ring
/// retention and trace correlation.
#if defined(__GNUC__)
#define PMWARE_TLOG_PRINTF(a, b) __attribute__((format(printf, a, b)))
#else
#define PMWARE_TLOG_PRINTF(a, b)
#endif

PMWARE_TLOG_PRINTF(3, 4)
void slog_debug(const char* component, SimTime sim_time, const char* fmt, ...);
PMWARE_TLOG_PRINTF(3, 4)
void slog_info(const char* component, SimTime sim_time, const char* fmt, ...);
PMWARE_TLOG_PRINTF(3, 4)
void slog_warn(const char* component, SimTime sim_time, const char* fmt, ...);
PMWARE_TLOG_PRINTF(3, 4)
void slog_error(const char* component, SimTime sim_time, const char* fmt, ...);

#undef PMWARE_TLOG_PRINTF

/// "debug"/"info"/"warn"/"error"/"off" (case-insensitive) → level.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Applies a "--log-level LEVEL" argv flag to the global threshold; returns
/// false (with a stderr note) when the value does not parse. Benches and
/// examples call this after their default set_log_level.
bool apply_log_level_flag(int argc, char** argv);

}  // namespace pmware::telemetry
