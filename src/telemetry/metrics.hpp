// Telemetry metrics registry: the process-wide measurement substrate.
//
// Every layer of the middleware (net transport, sampling scheduler,
// inference engine, PMS, cloud instance, deployment study) records labeled
// counters, gauges, and histograms here instead of keeping ad-hoc stats
// structs. Exporters (telemetry/export.hpp) render the registry as
// Prometheus text — served by the cloud instance's GET /metrics — or as
// JSON for the benches' --json mode.
//
// Thread-safety: the deployment study simulates participants on a worker
// pool, so the registry is shared mutable state. Counter and Gauge cells
// are atomics (relaxed — they are statistics, not synchronization), each
// HistogramMetric guards its buckets with its own mutex, and the registry
// serializes family/series map lookups with a registry-wide mutex.
// Instrument references returned by counter()/gauge()/histogram() stay
// valid until reset() and may be used concurrently without further
// locking. Exporters iterate under the registry lock via with_families().
// Iteration order stays deterministic (std::map keyed by family name,
// then by label set).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/stats.hpp"

namespace pmware::telemetry {

/// Sorted key/value labels identifying one series within a family,
/// e.g. {{"interface", "gsm"}}. The empty set is a valid (unlabeled) series.
using LabelSet = std::map<std::string, std::string>;

/// Thrown on kind mismatches (e.g. asking for a counter named like an
/// existing gauge family) and histogram re-declarations with new bounds.
class TelemetryError : public std::logic_error {
 public:
  explicit TelemetryError(const std::string& what) : std::logic_error(what) {}
};

/// Monotonically increasing count. Prometheus convention: name ends in
/// "_total".
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Batch increment for run-oriented hot loops: one atomic add covers a
  /// whole dispatched run of samples.
  void add(std::uint64_t n) { inc(n); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value that can move both ways.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket distribution. Wraps util/stats.hpp: the Histogram supplies
/// the bucket layout (values outside [lo, hi) clamp into the edge buckets),
/// the RunningStats supply sum/mean/min/max for the exporters. Buckets and
/// stats must move together, so a per-metric mutex guards both; concurrent
/// readers take snapshot() rather than holding references across updates.
class HistogramMetric {
 public:
  /// Coherent copy of buckets + stats taken under the metric's lock.
  struct Snapshot {
    Histogram buckets;
    RunningStats stats;
  };

  HistogramMetric(double lo, double hi, std::size_t buckets)
      : hist_(lo, hi, buckets) {}

  void observe(double x) {
    const std::scoped_lock lock(mu_);
    hist_.add(x);
    stats_.add(x);
  }

  Snapshot snapshot() const {
    const std::scoped_lock lock(mu_);
    return Snapshot{hist_, stats_};
  }

  /// Unsynchronized views for single-threaded readers (tests, the stats
  /// views once workers have joined). Bucket *layout* is immutable, so
  /// bucket_lo/hi/count-of-buckets are always safe; live counts are not.
  const Histogram& buckets() const { return hist_; }
  const RunningStats& stats() const { return stats_; }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
  RunningStats stats_;
};

enum class MetricKind { Counter, Gauge, Histogram };
const char* to_string(MetricKind kind);

/// All series sharing one metric name. Exactly one of the three maps is
/// populated, matching `kind`.
struct MetricFamily {
  MetricKind kind = MetricKind::Counter;
  std::string help;
  std::map<LabelSet, std::unique_ptr<Counter>> counters;
  std::map<LabelSet, std::unique_ptr<Gauge>> gauges;
  std::map<LabelSet, std::unique_ptr<HistogramMetric>> histograms;
};

class MetricsRegistry {
 public:
  /// Returns the counter series for (name, labels), creating family and
  /// series on first use. Throws TelemetryError if `name` already names a
  /// family of a different kind. References stay valid until reset().
  Counter& counter(const std::string& name, LabelSet labels = {},
                   const std::string& help = "");

  Gauge& gauge(const std::string& name, LabelSet labels = {},
               const std::string& help = "");

  /// Histogram bounds are a property of the family: the first declaration
  /// wins and later calls must repeat it (mismatch throws TelemetryError).
  HistogramMetric& histogram(const std::string& name, LabelSet labels,
                             double lo, double hi, std::size_t bucket_count,
                             const std::string& help = "");

  /// Read-side lookups for the thin stats views (ClientStats, PmsStats):
  /// null when the family or series does not exist (e.g. after reset()).
  const Counter* find_counter(const std::string& name,
                              const LabelSet& labels) const;
  const Gauge* find_gauge(const std::string& name, const LabelSet& labels) const;
  const HistogramMetric* find_histogram(const std::string& name,
                                        const LabelSet& labels) const;
  /// Value of a counter series, 0 when absent.
  std::uint64_t counter_value(const std::string& name,
                              const LabelSet& labels = {}) const;

  /// Sum of every series in a counter family (0 when absent) — the fleet
  /// aggregate across instance labels.
  std::uint64_t family_total(const std::string& name) const;

  /// Runs `fn(families)` with the registry lock held so exporters see a
  /// coherent family/series table even while writers register new series.
  /// `fn` must not call back into the registry (non-reentrant lock).
  template <typename Fn>
  auto with_families(Fn&& fn) const {
    const std::scoped_lock lock(mu_);
    return fn(families_);
  }

  /// Unsynchronized view for single-threaded callers; concurrent-safe
  /// readers go through with_families().
  const std::map<std::string, MetricFamily>& families() const {
    return families_;
  }
  std::size_t family_count() const {
    const std::scoped_lock lock(mu_);
    return families_.size();
  }

  /// Drops every family and series. Instrument references obtained earlier
  /// dangle afterwards — callers must re-fetch. Hot paths cache handles via
  /// CachedCounter below, which revalidates against reset_epoch() so a
  /// reset invalidates every cached handle instead of leaving it dangling.
  void reset() {
    const std::scoped_lock lock(mu_);
    families_.clear();
    reset_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bumped on every reset(); cached instrument handles compare it to
  /// decide whether a re-lookup is needed (one relaxed load per use).
  std::uint64_t reset_epoch() const {
    return reset_epoch_.load(std::memory_order_relaxed);
  }

  /// Total counter()/gauge()/histogram() lookups served. The sensing hot
  /// loop must not take the registry lock per sample; the scheduler
  /// microbench asserts this stays flat across a dispatch run.
  std::uint64_t lookup_count() const {
    return lookups_.load(std::memory_order_relaxed);
  }

  /// Fresh id for per-instance labels ("c3", "pms7"); never reused, not
  /// affected by reset() so views of dead instances stay distinct.
  std::string next_instance_label(const std::string& prefix);

 private:
  /// Caller must hold mu_.
  MetricFamily& family_of(const std::string& name, MetricKind kind,
                          const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, MetricFamily> families_;
  std::atomic<std::uint64_t> next_instance_{0};
  std::atomic<std::uint64_t> reset_epoch_{0};
  std::atomic<std::uint64_t> lookups_{0};
};

/// The process-wide registry every middleware layer records into.
MetricsRegistry& registry();

/// Pre-resolved counter handle for hot loops. Resolves the (name, labels)
/// series once and reuses the reference — the per-use cost is one relaxed
/// epoch load and a compare, no map lookups, no string building, no
/// registry lock. Safe across registry().reset(): the epoch mismatch
/// triggers a re-resolve instead of writing through a dangling pointer.
class CachedCounter {
 public:
  CachedCounter(std::string name, LabelSet labels, std::string help)
      : name_(std::move(name)),
        labels_(std::move(labels)),
        help_(std::move(help)) {}

  Counter& get() {
    auto& reg = registry();
    const std::uint64_t epoch = reg.reset_epoch();
    if (cached_ == nullptr || epoch_ != epoch) {
      cached_ = &reg.counter(name_, labels_, help_);
      epoch_ = epoch;
    }
    return *cached_;
  }

 private:
  std::string name_;
  LabelSet labels_;
  std::string help_;
  Counter* cached_ = nullptr;
  std::uint64_t epoch_ = ~std::uint64_t{0};
};

}  // namespace pmware::telemetry
