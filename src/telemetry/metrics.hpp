// Telemetry metrics registry: the process-wide measurement substrate.
//
// Every layer of the middleware (net transport, sampling scheduler,
// inference engine, PMS, cloud instance, deployment study) records labeled
// counters, gauges, and histograms here instead of keeping ad-hoc stats
// structs. Exporters (telemetry/export.hpp) render the registry as
// Prometheus text — served by the cloud instance's GET /metrics — or as
// JSON for the benches' --json mode.
//
// Thread-safety: the deployment study simulates participants on a worker
// pool, so the registry is shared mutable state. Counter cells are striped
// relaxed atomics (a single-writer fast cell plus lazily allocated
// cache-line-padded overflow stripes, merged at read time), Gauge cells are
// single atomics, each HistogramMetric keeps per-thread shards (one
// uncontended mutex per shard, merged coherently at snapshot()), and the
// registry serializes family/series map lookups with a registry-wide
// mutex. Instrument references returned by counter()/gauge()/histogram()
// stay valid until reset() and may be used concurrently without further
// locking; hot paths pre-resolve them through the MetricHandle family
// below so steady-state recording never touches the registry lock.
// Exporters iterate under the registry lock via with_families().
// Iteration order stays deterministic (std::map keyed by family name,
// then by label set).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/stats.hpp"

namespace pmware::telemetry {

/// Sorted key/value labels identifying one series within a family,
/// e.g. {{"interface", "gsm"}}. The empty set is a valid (unlabeled) series.
using LabelSet = std::map<std::string, std::string>;

/// Thrown on kind mismatches (e.g. asking for a counter named like an
/// existing gauge family) and histogram re-declarations with new bounds.
class TelemetryError : public std::logic_error {
 public:
  explicit TelemetryError(const std::string& what) : std::logic_error(what) {}
};

/// Stable, small per-thread index used to spread shared instruments across
/// stripes. Assigned on first use, never reused within the process.
unsigned thread_stripe_id();

/// Number of overflow stripes shared instruments fan out across. Power of
/// two so the stripe pick is a mask, sized for the 8-worker study pool.
inline constexpr unsigned kMetricStripes = 8;

/// Monotonically increasing count. Prometheus convention: name ends in
/// "_total".
///
/// Striped for write scalability: the first thread to inc() claims the
/// inline fast cell (the overwhelmingly common case — per-instance series
/// are only ever written by the worker simulating that participant, so
/// they stay one plain atomic with no extra allocation). Threads other
/// than the owner fan out across kMetricStripes cache-line-padded overflow
/// cells, allocated lazily on the first cross-thread write, so the few
/// genuinely shared families (cloud route counters, study totals) never
/// bounce one cache line between 8 workers. Reads sum all cells; like the
/// old single-atomic counter, value() is monotonic but not a synchronized
/// point-in-time cut.
class Counter {
 public:
  Counter() = default;
  ~Counter() { delete[] stripes_.load(std::memory_order_acquire); }
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) {
    const unsigned tid = thread_stripe_id();
    std::uint32_t owner = owner_.load(std::memory_order_relaxed);
    if (owner == kUnowned &&
        owner_.compare_exchange_strong(owner, tid, std::memory_order_relaxed))
      owner = tid;
    if (owner == tid) {
      head_.fetch_add(n, std::memory_order_relaxed);
      return;
    }
    overflow_stripe(tid).fetch_add(n, std::memory_order_relaxed);
  }
  /// Batch increment for run-oriented hot loops: one atomic add covers a
  /// whole dispatched run of samples.
  void add(std::uint64_t n) { inc(n); }

  std::uint64_t value() const {
    std::uint64_t total = head_.load(std::memory_order_relaxed);
    if (const Stripe* s = stripes_.load(std::memory_order_acquire))
      for (unsigned i = 0; i < kMetricStripes; ++i)
        total += s[i].v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::uint32_t kUnowned = ~std::uint32_t{0};

  std::atomic<std::uint64_t>& overflow_stripe(unsigned tid) {
    Stripe* s = stripes_.load(std::memory_order_acquire);
    if (s == nullptr) {
      auto* fresh = new Stripe[kMetricStripes];
      if (stripes_.compare_exchange_strong(s, fresh,
                                           std::memory_order_acq_rel))
        s = fresh;
      else
        delete[] fresh;  // another thread won the race
    }
    return s[tid & (kMetricStripes - 1)].v;
  }

  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint32_t> owner_{kUnowned};
  std::atomic<Stripe*> stripes_{nullptr};
};

/// Point-in-time value that can move both ways.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket distribution. Wraps util/stats.hpp: the Histogram supplies
/// the bucket layout (values outside [lo, hi) clamp into the edge buckets),
/// the RunningStats supply sum/mean/min/max for the exporters.
///
/// Sharded for write scalability, mirroring Counter: the first observing
/// thread claims the inline head shard; other threads fan out across
/// lazily allocated per-stripe shards. Each shard has its own mutex
/// guarding its buckets + stats together, so in steady state every
/// observe() takes an *uncontended* lock (one thread per shard) instead of
/// serializing all workers on one metric-wide mutex. snapshot() locks each
/// shard in turn and merges — every observe lands in exactly one shard
/// atomically, so the merged result can never report sum/count torn across
/// buckets (bucket total always equals stats count).
class HistogramMetric {
 public:
  /// Coherent merged copy of buckets + stats across all shards.
  struct Snapshot {
    Histogram buckets;
    RunningStats stats;
  };

  HistogramMetric(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), bucket_count_(buckets), head_(lo, hi, buckets) {}
  ~HistogramMetric() {
    for (auto& slot : overflow_) delete slot.load(std::memory_order_acquire);
  }
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void observe(double x) {
    Shard& shard = shard_for(thread_stripe_id());
    const std::scoped_lock lock(shard.mu);
    shard.hist.add(x);
    shard.stats.add(x);
  }

  Snapshot snapshot() const {
    Snapshot out{Histogram(lo_, hi_, bucket_count_), RunningStats{}};
    merge_shard(head_, out);
    for (const auto& slot : overflow_)
      if (const Shard* shard = slot.load(std::memory_order_acquire))
        merge_shard(*shard, out);
    return out;
  }

  /// Merged copies for single-threaded readers (tests, the stats views
  /// once workers have joined). These changed from references to values
  /// when the metric went sharded — there is no longer one Histogram to
  /// point at.
  Histogram buckets() const { return snapshot().buckets; }
  RunningStats stats() const { return snapshot().stats; }

  /// Bucket layout (immutable after construction, always lock-free).
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bucket_count() const { return bucket_count_; }

 private:
  struct Shard {
    Shard(double lo, double hi, std::size_t buckets) : hist(lo, hi, buckets) {}
    mutable std::mutex mu;
    Histogram hist;
    RunningStats stats;
  };
  static constexpr std::uint32_t kUnowned = ~std::uint32_t{0};

  Shard& shard_for(unsigned tid) {
    std::uint32_t owner = owner_.load(std::memory_order_relaxed);
    if (owner == kUnowned &&
        owner_.compare_exchange_strong(owner, tid, std::memory_order_relaxed))
      owner = tid;
    if (owner == tid) return head_;
    auto& slot = overflow_[tid & (kMetricStripes - 1)];
    Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) {
      auto* fresh = new Shard(lo_, hi_, bucket_count_);
      if (slot.compare_exchange_strong(shard, fresh,
                                       std::memory_order_acq_rel))
        shard = fresh;
      else
        delete fresh;  // another thread won the race
    }
    return *shard;
  }

  static void merge_shard(const Shard& shard, Snapshot& out) {
    const std::scoped_lock lock(shard.mu);
    out.buckets.merge(shard.hist);
    out.stats.merge(shard.stats);
  }

  double lo_;
  double hi_;
  std::size_t bucket_count_;
  Shard head_;
  std::atomic<std::uint32_t> owner_{kUnowned};
  std::array<std::atomic<Shard*>, kMetricStripes> overflow_{};
};

enum class MetricKind { Counter, Gauge, Histogram };
const char* to_string(MetricKind kind);

/// All series sharing one metric name. Exactly one of the three maps is
/// populated, matching `kind`.
struct MetricFamily {
  MetricKind kind = MetricKind::Counter;
  std::string help;
  std::map<LabelSet, std::unique_ptr<Counter>> counters;
  std::map<LabelSet, std::unique_ptr<Gauge>> gauges;
  std::map<LabelSet, std::unique_ptr<HistogramMetric>> histograms;
};

class MetricsRegistry {
 public:
  /// Returns the counter series for (name, labels), creating family and
  /// series on first use. Throws TelemetryError if `name` already names a
  /// family of a different kind. References stay valid until reset().
  Counter& counter(const std::string& name, LabelSet labels = {},
                   const std::string& help = "");

  Gauge& gauge(const std::string& name, LabelSet labels = {},
               const std::string& help = "");

  /// Histogram bounds are a property of the family: the first declaration
  /// wins and later calls must repeat it (mismatch throws TelemetryError).
  HistogramMetric& histogram(const std::string& name, LabelSet labels,
                             double lo, double hi, std::size_t bucket_count,
                             const std::string& help = "");

  /// Read-side lookups for the thin stats views (ClientStats, PmsStats):
  /// null when the family or series does not exist (e.g. after reset()).
  const Counter* find_counter(const std::string& name,
                              const LabelSet& labels) const;
  const Gauge* find_gauge(const std::string& name, const LabelSet& labels) const;
  const HistogramMetric* find_histogram(const std::string& name,
                                        const LabelSet& labels) const;
  /// Value of a counter series, 0 when absent.
  std::uint64_t counter_value(const std::string& name,
                              const LabelSet& labels = {}) const;

  /// Sum of every series in a counter family (0 when absent) — the fleet
  /// aggregate across instance labels.
  std::uint64_t family_total(const std::string& name) const;

  /// Runs `fn(families)` with the registry lock held so exporters see a
  /// coherent family/series table even while writers register new series.
  /// `fn` must not call back into the registry (non-reentrant lock).
  template <typename Fn>
  auto with_families(Fn&& fn) const {
    const std::scoped_lock lock(mu_);
    return fn(families_);
  }

  /// Unsynchronized view for single-threaded callers; concurrent-safe
  /// readers go through with_families().
  const std::map<std::string, MetricFamily>& families() const {
    return families_;
  }
  std::size_t family_count() const {
    const std::scoped_lock lock(mu_);
    return families_.size();
  }

  /// Drops every family and series. Instrument references obtained earlier
  /// dangle afterwards — callers must re-fetch. Hot paths cache handles via
  /// the MetricHandle family below, which revalidates against reset_epoch()
  /// so a reset invalidates every cached handle instead of leaving it
  /// dangling.
  void reset() {
    const std::scoped_lock lock(mu_);
    families_.clear();
    reset_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bumped on every reset(); cached instrument handles compare it to
  /// decide whether a re-lookup is needed (one relaxed load per use).
  std::uint64_t reset_epoch() const {
    return reset_epoch_.load(std::memory_order_relaxed);
  }

  /// Total counter()/gauge()/histogram() lookups served. The sensing hot
  /// loop must not take the registry lock per sample; the scheduler
  /// microbench asserts this stays flat across a dispatch run.
  std::uint64_t lookup_count() const {
    return lookups_.load(std::memory_order_relaxed);
  }

  /// Fresh id for per-instance labels ("c3", "pms7"); never reused, not
  /// affected by reset() so views of dead instances stay distinct. Inside
  /// an InstanceLabelScope the label is "<prefix>~<slot>" instead — stable
  /// per worker slot, so a streaming study reuses O(threads) series rather
  /// than growing the registry by O(participants).
  std::string next_instance_label(const std::string& prefix);

  /// Total series across every family — the label-cardinality gauge the
  /// streaming runner's O(N)-scan regression test watches.
  std::size_t series_count() const;

 private:
  /// Caller must hold mu_.
  MetricFamily& family_of(const std::string& name, MetricKind kind,
                          const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, MetricFamily> families_;
  std::atomic<std::uint64_t> next_instance_{0};
  std::atomic<std::uint64_t> reset_epoch_{0};
  std::atomic<std::uint64_t> lookups_{0};
};

/// The process-wide registry every middleware layer records into.
MetricsRegistry& registry();

/// RAII thread-local override for next_instance_label(): while a scope is
/// alive on a thread, every instance label minted on that thread is
/// "<prefix>~<slot>" instead of a fresh "<prefix><n>". The streaming study
/// runner opens one scope per worker slot in aggregate mode, so the
/// thousands of short-lived PMS/client/device instances of a population-
/// scale run share O(threads) registry series (family totals stay exact —
/// counters only accumulate — but per-instance stats views are meaningless
/// while a scope is active). Scopes nest; the innermost wins.
class InstanceLabelScope {
 public:
  explicit InstanceLabelScope(std::string slot);
  ~InstanceLabelScope();

  InstanceLabelScope(const InstanceLabelScope&) = delete;
  InstanceLabelScope& operator=(const InstanceLabelScope&) = delete;

  /// The innermost slot name active on this thread, or null.
  static const std::string* current();

 private:
  std::string slot_;
  InstanceLabelScope* prev_;
};

/// Pre-resolved instrument handles for hot loops — the MetricHandle
/// family. Each resolves its (name, labels) series once and reuses the
/// reference: the per-use cost is one relaxed epoch load and a compare, no
/// map lookups, no string building, no registry lock. Safe across
/// registry().reset(): the epoch mismatch triggers a re-resolve instead of
/// writing through a dangling pointer. `Derived` supplies resolve(), which
/// performs the one registry lookup.
template <typename Instrument, typename Derived>
class MetricHandle {
 public:
  MetricHandle(std::string name, LabelSet labels, std::string help)
      : name_(std::move(name)),
        labels_(std::move(labels)),
        help_(std::move(help)) {}

  Instrument& get() {
    auto& reg = registry();
    const std::uint64_t epoch = reg.reset_epoch();
    if (cached_ == nullptr || epoch_ != epoch) {
      cached_ = &static_cast<Derived*>(this)->resolve(reg);
      epoch_ = epoch;
    }
    return *cached_;
  }

 protected:
  std::string name_;
  LabelSet labels_;
  std::string help_;

 private:
  Instrument* cached_ = nullptr;
  std::uint64_t epoch_ = ~std::uint64_t{0};
};

class CounterHandle : public MetricHandle<Counter, CounterHandle> {
 public:
  using MetricHandle::MetricHandle;
  void inc(std::uint64_t n = 1) { get().inc(n); }
  Counter& resolve(MetricsRegistry& reg) {
    return reg.counter(name_, labels_, help_);
  }
};

class GaugeHandle : public MetricHandle<Gauge, GaugeHandle> {
 public:
  using MetricHandle::MetricHandle;
  void set(double v) { get().set(v); }
  Gauge& resolve(MetricsRegistry& reg) {
    return reg.gauge(name_, labels_, help_);
  }
};

class HistogramHandle : public MetricHandle<HistogramMetric, HistogramHandle> {
 public:
  /// Bounds travel with the handle — a re-resolve after reset() must
  /// re-declare the family with the same layout.
  HistogramHandle(std::string name, LabelSet labels, double lo, double hi,
                  std::size_t bucket_count, std::string help)
      : MetricHandle(std::move(name), std::move(labels), std::move(help)),
        lo_(lo),
        hi_(hi),
        bucket_count_(bucket_count) {}
  void observe(double x) { get().observe(x); }
  HistogramMetric& resolve(MetricsRegistry& reg) {
    return reg.histogram(name_, labels_, lo_, hi_, bucket_count_, help_);
  }

 private:
  double lo_;
  double hi_;
  std::size_t bucket_count_;
};

/// PR 7 name for the pre-resolved counter handle; kept for existing call
/// sites (scheduler, inference engine, PMS outbox counters).
using CachedCounter = CounterHandle;

}  // namespace pmware::telemetry
