// Process resource gauges: what this run costs the machine.
//
// Reads /proc/self (Linux; zeros elsewhere) and publishes
// process_rss_bytes / process_peak_rss_bytes / process_cpu_seconds gauges,
// so a population-scale study reports its memory envelope and CPU burn in
// every /metrics scrape, timeseries sample, and BENCH_*.json — the
// ROADMAP's "peak RSS in the bench JSON" requirement.
#pragma once

#include <cstdint>

namespace pmware::telemetry {

class MetricsRegistry;

struct ProcessStats {
  std::uint64_t rss_bytes = 0;       ///< current resident set (VmRSS)
  std::uint64_t peak_rss_bytes = 0;  ///< high-water resident set (VmHWM)
  double cpu_seconds = 0;            ///< user + system CPU consumed
};

/// Point-in-time read of /proc/self/status + /proc/self/stat. All-zero on
/// platforms without procfs or if the files cannot be parsed.
ProcessStats read_process_stats();

/// Reads the process stats and publishes them as gauges in `reg`
/// (process_rss_bytes, process_peak_rss_bytes, process_cpu_seconds).
/// Returns the sampled values.
ProcessStats sample_process_stats(MetricsRegistry& reg);

}  // namespace pmware::telemetry
