#include "telemetry/process.hpp"

#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "telemetry/metrics.hpp"

namespace pmware::telemetry {

namespace {

/// Parses "VmRSS:    1234 kB" style lines out of /proc/self/status.
std::uint64_t status_kb(const char* buf, const char* key) {
  const char* line = std::strstr(buf, key);
  if (line == nullptr) return 0;
  unsigned long long kb = 0;
  if (std::sscanf(line + std::strlen(key), " %llu", &kb) != 1) return 0;
  return static_cast<std::uint64_t>(kb) * 1024;
}

}  // namespace

ProcessStats read_process_stats() {
  ProcessStats stats;
#if defined(__linux__)
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char buf[8192];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    buf[n] = '\0';
    std::fclose(f);
    stats.rss_bytes = status_kb(buf, "VmRSS:");
    stats.peak_rss_bytes = status_kb(buf, "VmHWM:");
  }
  if (FILE* f = std::fopen("/proc/self/stat", "r")) {
    char buf[2048];
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    buf[n] = '\0';
    std::fclose(f);
    // Field 2 (comm) may contain spaces; skip past its closing paren, then
    // utime/stime are fields 14/15 (1-based), i.e. 11 fields after state.
    if (const char* p = std::strrchr(buf, ')')) {
      unsigned long long utime = 0, stime = 0;
      if (std::sscanf(p + 1,
                      " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu",
                      &utime, &stime) == 2) {
        const long hz = ::sysconf(_SC_CLK_TCK);
        if (hz > 0)
          stats.cpu_seconds = static_cast<double>(utime + stime) /
                              static_cast<double>(hz);
      }
    }
  }
#endif
  return stats;
}

ProcessStats sample_process_stats(MetricsRegistry& reg) {
  const ProcessStats stats = read_process_stats();
  reg.gauge("process_rss_bytes", {}, "resident set size of this process")
      .set(static_cast<double>(stats.rss_bytes));
  reg.gauge("process_peak_rss_bytes", {},
            "high-water resident set size of this process")
      .set(static_cast<double>(stats.peak_rss_bytes));
  reg.gauge("process_cpu_seconds", {},
            "user + system CPU seconds consumed by this process")
      .set(stats.cpu_seconds);
  return stats;
}

}  // namespace pmware::telemetry
