// Sim-time-aware tracing: spans record *both* clocks.
//
// The middleware runs on SimTime (reproducible, advanced by the sampling
// scheduler), but the cost of running the middleware itself — a GCA
// recluster, a JSON encode, a routed cloud handler — is wall-clock work.
// A Span therefore captures a [sim_begin, sim_end] interval (how much
// simulated life it covered) and a wall_ns duration (how long the
// implementation took). Spans nest: a PMS housekeeping pass shows its
// GCA-offload RPC as a child, so traces answer "where did the wall time of
// this simulated day go?".
//
// Trace context: every span carries a trace_id identifying the causal tree
// it belongs to. Roots draw a fresh id; children inherit their parent's.
// The context of the innermost open span (current_context()) can be carried
// across a process boundary — the REST client stamps it into
// X-PMWare-Trace-Id / X-PMWare-Parent-Span headers and the router opens the
// handler span with that *remote* parent — so one PMS-originated request
// yields a single tree spanning device and cloud.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/simtime.hpp"

namespace pmware::telemetry {

struct SpanRecord {
  std::string name;
  std::size_t id = 0;
  /// Index of the enclosing span's record, or kNoParent for roots.
  std::size_t parent = kNoParent;
  std::size_t depth = 0;       ///< 0 for roots
  /// Causal tree this span belongs to; roots allocate, children inherit.
  /// Never 0 for a recorded span.
  std::uint64_t trace_id = 0;
  SimTime sim_begin = 0;
  SimTime sim_end = 0;
  std::int64_t wall_ns = 0;
  bool finished = false;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  SimDuration sim_duration() const { return sim_end - sim_begin; }
};

/// The portable identity of an open span: enough to parent a child span
/// opened on another thread or "process" (the simulated REST boundary).
/// Default-constructed context is invalid (= no active trace).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::size_t span_id = SpanRecord::kNoParent;

  bool valid() const {
    return trace_id != 0 && span_id != SpanRecord::kNoParent;
  }
};

/// Collects finished spans in start order (parents before children). A hard
/// cap bounds memory on long runs; spans opened past it are dropped and
/// counted.
///
/// Thread-safety: the tracer is a locked sink. One mutex guards the record
/// vector and the per-thread open-span stacks, so worker threads of the
/// parallel deployment study can open and close spans concurrently.
/// Parent/depth come from the *calling thread's* stack — each worker's
/// spans nest among themselves, never across threads. Within one thread a
/// parent's record index is always below its children's, so exporters can
/// keep assuming parents-before-children.
class Tracer {
 public:
  explicit Tracer(std::size_t max_records = 65536)
      : max_records_(max_records) {}

  /// Unsynchronized view for single-threaded callers (tests, post-join
  /// reads); concurrent readers use snapshot().
  const std::vector<SpanRecord>& records() const { return records_; }

  /// Coherent copy of the finished-and-open records, taken under the lock.
  std::vector<SpanRecord> snapshot() const {
    const std::scoped_lock lock(mu_);
    return records_;
  }

  std::size_t dropped() const {
    const std::scoped_lock lock(mu_);
    return dropped_;
  }

  /// Open-span stack depth of the *calling* thread.
  std::size_t open_depth() const {
    const std::scoped_lock lock(mu_);
    const auto it = open_.find(std::this_thread::get_id());
    return it == open_.end() ? 0 : it->second.size();
  }

  /// Context of the calling thread's innermost open span — what the REST
  /// client stamps into the trace-context headers. Invalid when the thread
  /// has no span open (or the innermost one was dropped at capacity).
  TraceContext current_context() const {
    const std::scoped_lock lock(mu_);
    const auto it = open_.find(std::this_thread::get_id());
    if (it == open_.end() || it->second.empty()) return {};
    const SpanRecord& record = records_[it->second.back()];
    return {record.trace_id, record.id};
  }

  void reset() {
    const std::scoped_lock lock(mu_);
    records_.clear();
    open_.clear();
    dropped_ = 0;
  }

  /// Records an already-measured, finished span as a child of the calling
  /// thread's innermost open span (a root when none is open) — for callers
  /// that accumulate the wall cost of many scattered slices and report them
  /// as one frame, where per-slice RAII spans would blow the record cap
  /// (e.g. the sampling scheduler attributing per-interface callback time
  /// once per window instead of once per run). Returns the record index, or
  /// SpanRecord::kNoParent when dropped at capacity.
  std::size_t record_span(std::string name, SimTime sim_begin, SimTime sim_end,
                          std::int64_t wall_ns);

 private:
  friend class Span;

  /// Returns the record index, or SpanRecord::kNoParent when at capacity.
  /// A valid `remote_parent` (carried in from the other side of a request
  /// boundary) overrides the calling thread's stack for parent/trace-id
  /// resolution; it must reference a record of *this* tracer.
  std::size_t open_span(std::string name, SimTime sim_now,
                        TraceContext remote_parent = {});
  void close_span(std::size_t index, SimTime sim_now, std::int64_t wall_ns);

  mutable std::mutex mu_;
  std::size_t max_records_;
  std::vector<SpanRecord> records_;
  /// Per-thread stacks of open record indices. Keyed by thread id (not
  /// thread_local) so test-local Tracer instances stay independent; an
  /// entry is erased when its stack empties, bounding the map by the
  /// number of threads with spans currently open.
  std::map<std::thread::id, std::vector<std::size_t>> open_;
  std::size_t dropped_ = 0;
  /// Fresh trace ids for root spans; monotonic across reset() so ids from
  /// different runs never collide in exported artifacts.
  std::uint64_t next_trace_id_ = 1;
};

/// RAII span. Opens on construction; finish(sim_now) closes with an explicit
/// simulation end time. The destructor closes an unfinished span at its own
/// sim_begin (zero simulated duration) — right for work that happens "between
/// ticks" like housekeeping, where only the wall clock advances.
class Span {
 public:
  Span(Tracer& tracer, std::string name, SimTime sim_now);
  /// Opens with an explicit remote parent (trace-context propagation): the
  /// span joins `parent`'s trace instead of the calling thread's stack top.
  Span(Tracer& tracer, std::string name, SimTime sim_now, TraceContext parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void finish(SimTime sim_now);
  bool finished() const { return finished_; }

 private:
  Tracer& tracer_;
  std::size_t index_;
  SimTime sim_begin_;
  std::chrono::steady_clock::time_point wall_begin_;
  bool finished_ = false;
};

/// Span that reads the simulation clock itself, at open and at end of scope
/// — for scopes where sim time advances while they run (e.g. a scheduler
/// window), so callers need not thread the end time out by hand.
class ScopedTimer {
 public:
  using SimClock = std::function<SimTime()>;

  ScopedTimer(Tracer& tracer, std::string name, SimClock clock)
      : clock_(std::move(clock)), span_(tracer, std::move(name), clock_()) {}
  ~ScopedTimer() { span_.finish(clock_()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  SimClock clock_;
  Span span_;
};

/// The process-wide tracer, sibling of telemetry::registry().
Tracer& tracer();

}  // namespace pmware::telemetry
