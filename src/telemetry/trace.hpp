// Sim-time-aware tracing: spans record *both* clocks.
//
// The middleware runs on SimTime (reproducible, advanced by the sampling
// scheduler), but the cost of running the middleware itself — a GCA
// recluster, a JSON encode, a routed cloud handler — is wall-clock work.
// A Span therefore captures a [sim_begin, sim_end] interval (how much
// simulated life it covered) and a wall_ns duration (how long the
// implementation took). Spans nest: a PMS housekeeping pass shows its
// GCA-offload RPC as a child, so traces answer "where did the wall time of
// this simulated day go?".
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/simtime.hpp"

namespace pmware::telemetry {

struct SpanRecord {
  std::string name;
  std::size_t id = 0;
  /// Index of the enclosing span's record, or kNoParent for roots.
  std::size_t parent = kNoParent;
  std::size_t depth = 0;       ///< 0 for roots
  SimTime sim_begin = 0;
  SimTime sim_end = 0;
  std::int64_t wall_ns = 0;
  bool finished = false;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  SimDuration sim_duration() const { return sim_end - sim_begin; }
};

/// Collects finished spans in start order (parents before children). A hard
/// cap bounds memory on long runs; spans opened past it are dropped and
/// counted.
///
/// Thread-safety: the tracer is a locked sink. One mutex guards the record
/// vector and the per-thread open-span stacks, so worker threads of the
/// parallel deployment study can open and close spans concurrently.
/// Parent/depth come from the *calling thread's* stack — each worker's
/// spans nest among themselves, never across threads. Within one thread a
/// parent's record index is always below its children's, so exporters can
/// keep assuming parents-before-children.
class Tracer {
 public:
  explicit Tracer(std::size_t max_records = 65536)
      : max_records_(max_records) {}

  /// Unsynchronized view for single-threaded callers (tests, post-join
  /// reads); concurrent readers use snapshot().
  const std::vector<SpanRecord>& records() const { return records_; }

  /// Coherent copy of the finished-and-open records, taken under the lock.
  std::vector<SpanRecord> snapshot() const {
    const std::scoped_lock lock(mu_);
    return records_;
  }

  std::size_t dropped() const {
    const std::scoped_lock lock(mu_);
    return dropped_;
  }

  /// Open-span stack depth of the *calling* thread.
  std::size_t open_depth() const {
    const std::scoped_lock lock(mu_);
    const auto it = open_.find(std::this_thread::get_id());
    return it == open_.end() ? 0 : it->second.size();
  }

  void reset() {
    const std::scoped_lock lock(mu_);
    records_.clear();
    open_.clear();
    dropped_ = 0;
  }

 private:
  friend class Span;

  /// Returns the record index, or SpanRecord::kNoParent when at capacity.
  std::size_t open_span(std::string name, SimTime sim_now);
  void close_span(std::size_t index, SimTime sim_now, std::int64_t wall_ns);

  mutable std::mutex mu_;
  std::size_t max_records_;
  std::vector<SpanRecord> records_;
  /// Per-thread stacks of open record indices. Keyed by thread id (not
  /// thread_local) so test-local Tracer instances stay independent; an
  /// entry is erased when its stack empties, bounding the map by the
  /// number of threads with spans currently open.
  std::map<std::thread::id, std::vector<std::size_t>> open_;
  std::size_t dropped_ = 0;
};

/// RAII span. Opens on construction; finish(sim_now) closes with an explicit
/// simulation end time. The destructor closes an unfinished span at its own
/// sim_begin (zero simulated duration) — right for work that happens "between
/// ticks" like housekeeping, where only the wall clock advances.
class Span {
 public:
  Span(Tracer& tracer, std::string name, SimTime sim_now);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void finish(SimTime sim_now);
  bool finished() const { return finished_; }

 private:
  Tracer& tracer_;
  std::size_t index_;
  SimTime sim_begin_;
  std::chrono::steady_clock::time_point wall_begin_;
  bool finished_ = false;
};

/// Span that reads the simulation clock itself, at open and at end of scope
/// — for scopes where sim time advances while they run (e.g. a scheduler
/// window), so callers need not thread the end time out by hand.
class ScopedTimer {
 public:
  using SimClock = std::function<SimTime()>;

  ScopedTimer(Tracer& tracer, std::string name, SimClock clock)
      : clock_(std::move(clock)), span_(tracer, std::move(name), clock_()) {}
  ~ScopedTimer() { span_.finish(clock_()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  SimClock clock_;
  Span span_;
};

/// The process-wide tracer, sibling of telemetry::registry().
Tracer& tracer();

}  // namespace pmware::telemetry
