#include "telemetry/metrics.hpp"

#include "util/strfmt.hpp"

namespace pmware::telemetry {

unsigned thread_stripe_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

MetricFamily& MetricsRegistry::family_of(const std::string& name,
                                         MetricKind kind,
                                         const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  MetricFamily& family = it->second;
  if (inserted) {
    family.kind = kind;
    family.help = help;
  } else if (family.kind != kind) {
    throw TelemetryError(strfmt("metric '%s' is a %s, requested as %s",
                                name.c_str(), to_string(family.kind),
                                to_string(kind)));
  }
  if (family.help.empty() && !help.empty()) family.help = help;
  return family;
}

Counter& MetricsRegistry::counter(const std::string& name, LabelSet labels,
                                  const std::string& help) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(mu_);
  MetricFamily& family = family_of(name, MetricKind::Counter, help);
  auto [it, inserted] = family.counters.try_emplace(std::move(labels));
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, LabelSet labels,
                              const std::string& help) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(mu_);
  MetricFamily& family = family_of(name, MetricKind::Gauge, help);
  auto [it, inserted] = family.gauges.try_emplace(std::move(labels));
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            LabelSet labels, double lo,
                                            double hi, std::size_t bucket_count,
                                            const std::string& help) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(mu_);
  MetricFamily& family = family_of(name, MetricKind::Histogram, help);
  if (!family.histograms.empty()) {
    // Bucket layout is immutable after construction, so reading it without
    // the metric's own lock is safe.
    const HistogramMetric& existing = *family.histograms.begin()->second;
    if (existing.lo() != lo || existing.hi() != hi ||
        existing.bucket_count() != bucket_count) {
      throw TelemetryError(
          strfmt("histogram '%s' re-declared with different bounds",
                 name.c_str()));
    }
  }
  auto [it, inserted] = family.histograms.try_emplace(std::move(labels));
  if (inserted)
    it->second = std::make_unique<HistogramMetric>(lo, hi, bucket_count);
  return *it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const LabelSet& labels) const {
  const std::scoped_lock lock(mu_);
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.kind != MetricKind::Counter)
    return nullptr;
  const auto sit = fit->second.counters.find(labels);
  return sit == fit->second.counters.end() ? nullptr : sit->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const LabelSet& labels) const {
  const std::scoped_lock lock(mu_);
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.kind != MetricKind::Gauge)
    return nullptr;
  const auto sit = fit->second.gauges.find(labels);
  return sit == fit->second.gauges.end() ? nullptr : sit->second.get();
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name, const LabelSet& labels) const {
  const std::scoped_lock lock(mu_);
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.kind != MetricKind::Histogram)
    return nullptr;
  const auto sit = fit->second.histograms.find(labels);
  return sit == fit->second.histograms.end() ? nullptr : sit->second.get();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const LabelSet& labels) const {
  const Counter* c = find_counter(name, labels);
  return c == nullptr ? 0 : c->value();
}

std::uint64_t MetricsRegistry::family_total(const std::string& name) const {
  const std::scoped_lock lock(mu_);
  const auto fit = families_.find(name);
  if (fit == families_.end() || fit->second.kind != MetricKind::Counter)
    return 0;
  std::uint64_t total = 0;
  for (const auto& [labels, series] : fit->second.counters)
    total += series->value();
  return total;
}

namespace {
thread_local InstanceLabelScope* tl_label_scope = nullptr;
}  // namespace

std::string MetricsRegistry::next_instance_label(const std::string& prefix) {
  if (const std::string* slot = InstanceLabelScope::current())
    return strfmt("%s~%s", prefix.c_str(), slot->c_str());
  return strfmt("%s%llu", prefix.c_str(),
                static_cast<unsigned long long>(
                    next_instance_.fetch_add(1, std::memory_order_relaxed)));
}

std::size_t MetricsRegistry::series_count() const {
  const std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_)
    n += family.counters.size() + family.gauges.size() +
         family.histograms.size();
  return n;
}

InstanceLabelScope::InstanceLabelScope(std::string slot)
    : slot_(std::move(slot)), prev_(tl_label_scope) {
  tl_label_scope = this;
}

InstanceLabelScope::~InstanceLabelScope() { tl_label_scope = prev_; }

const std::string* InstanceLabelScope::current() {
  return tl_label_scope == nullptr ? nullptr : &tl_label_scope->slot_;
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace pmware::telemetry
