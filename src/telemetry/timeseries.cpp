#include "telemetry/timeseries.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/process.hpp"

namespace pmware::telemetry {

namespace {

/// Sum of every series in a gauge family (0 when absent) — mirrors
/// MetricsRegistry::family_total for counters.
double gauge_family_sum(const MetricsRegistry& reg, const std::string& name) {
  return reg.with_families(
      [&name](const std::map<std::string, MetricFamily>& families) {
        const auto it = families.find(name);
        if (it == families.end() || it->second.kind != MetricKind::Gauge)
          return 0.0;
        double total = 0;
        for (const auto& [labels, series] : it->second.gauges)
          total += series->value();
        return total;
      });
}

}  // namespace

void TimeSeriesRecorder::configure(const TimeSeriesConfig& config) {
  const std::scoped_lock lock(mu_);
  config_ = config;
  if (config_.interval <= 0) config_.interval = kSecondsPerDay;
  if (config_.capacity == 0) config_.capacity = 1;
  tracked_.clear();
  points_.clear();
  last_slot_ = 0;
  dropped_ = 0;
}

TimeSeriesConfig TimeSeriesRecorder::config() const {
  const std::scoped_lock lock(mu_);
  return config_;
}

void TimeSeriesRecorder::track_counter(const std::string& family) {
  const std::scoped_lock lock(mu_);
  tracked_.push_back({family, /*is_counter=*/true,
                      registry().family_total(family)});
}

void TimeSeriesRecorder::track_gauge(const std::string& family) {
  const std::scoped_lock lock(mu_);
  tracked_.push_back({family, /*is_counter=*/false, 0});
}

bool TimeSeriesRecorder::advance(SimTime now) {
  const std::scoped_lock lock(mu_);
  if (!config_.enabled) return false;
  const std::int64_t slot = now / config_.interval;
  if (slot <= last_slot_) return false;
  last_slot_ = slot;
  sample_locked(slot * config_.interval);
  return true;
}

void TimeSeriesRecorder::sample_locked(SimTime stamp) {
  // Refresh process gauges first so a tracked process_* family carries the
  // value as of this sample. Registry calls are safe here: mu_ and the
  // registry lock are only ever taken in this order.
  sample_process_stats(registry());

  TimeSeriesPoint point;
  point.sim_time = stamp;
  point.values.reserve(tracked_.size());
  for (Tracked& t : tracked_) {
    if (t.is_counter) {
      const std::uint64_t total = registry().family_total(t.family);
      point.values.push_back(
          static_cast<double>(total - t.prev_total));
      t.prev_total = total;
    } else {
      point.values.push_back(gauge_family_sum(registry(), t.family));
    }
  }
  points_.push_back(std::move(point));
  while (points_.size() > config_.capacity) {
    points_.pop_front();
    ++dropped_;
  }
}

std::vector<std::string> TimeSeriesRecorder::series_names() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tracked_.size());
  for (const Tracked& t : tracked_) names.push_back(t.family);
  return names;
}

std::vector<TimeSeriesPoint> TimeSeriesRecorder::points() const {
  const std::scoped_lock lock(mu_);
  return {points_.begin(), points_.end()};
}

std::size_t TimeSeriesRecorder::dropped() const {
  const std::scoped_lock lock(mu_);
  return dropped_;
}

Json TimeSeriesRecorder::to_json() const {
  const std::scoped_lock lock(mu_);
  Json out = Json::object();
  out.set("interval_s", config_.interval);
  out.set("capacity", static_cast<std::uint64_t>(config_.capacity));
  out.set("dropped", static_cast<std::uint64_t>(dropped_));
  Json series = Json::array();
  for (const Tracked& t : tracked_) series.push_back(t.family);
  out.set("series", std::move(series));
  Json points = Json::array();
  for (const TimeSeriesPoint& p : points_) {
    Json point = Json::object();
    point.set("t", p.sim_time);
    Json values = Json::array();
    for (double v : p.values) values.push_back(v);
    point.set("values", std::move(values));
    points.push_back(std::move(point));
  }
  out.set("points", std::move(points));
  return out;
}

TimeSeriesRecorder& timeseries() {
  static TimeSeriesRecorder instance;
  return instance;
}

}  // namespace pmware::telemetry
