#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pmware {

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::Number) throw JsonError("not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::Number) throw JsonError("not a number");
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::Array) throw JsonError("not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::Object) throw JsonError("not an object");
  return obj_;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key: " + key);
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && obj_.count(key) > 0;
}

double Json::get_double(const std::string& key, double fallback) const {
  return contains(key) && at(key).is_number() ? at(key).as_double() : fallback;
}

std::int64_t Json::get_int(const std::string& key, std::int64_t fallback) const {
  return contains(key) && at(key).is_number() ? at(key).as_int() : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  return contains(key) && at(key).is_string() ? at(key).as_string() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  return contains(key) && at(key).is_bool() ? at(key).as_bool() : fallback;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) throw JsonError("set on non-object");
  obj_[key] = std::move(value);
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) throw JsonError("push_back on non-array");
  arr_.push_back(std::move(value));
  return *this;
}

const Json& Json::operator[](std::size_t i) const {
  const auto& arr = as_array();
  if (i >= arr.size()) throw JsonError("array index out of range");
  return arr[i];
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  throw JsonError("size on non-container");
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return num_ == other.num_;
    case Type::String: return str_ == other.str_;
    case Type::Array: return arr_ == other.arr_;
    case Type::Object: return obj_ == other.obj_;
  }
  return false;
}

namespace {

void escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: number_to(out, num_); break;
    case Type::String: escape_to(out, str_); break;
    case Type::Array: {
      if (arr_.empty()) { out += "[]"; break; }
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) { out += "{}"; break; }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_to(out, k);
        out += ':';
        if (indent > 0) out += ' ';
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') { take(); return Json(std::move(obj)); }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') { take(); return Json(std::move(arr)); }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs not needed for our data)
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    double value = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_)
      fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace pmware
