#include "util/rng.hpp"

#include <algorithm>

namespace pmware {

namespace {

// SplitMix64 finalizer: decorrelates fork salts from the parent stream.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::fork(std::uint64_t salt) {
  const std::uint64_t base = engine_();
  return Rng(mix(base ^ mix(salt)));
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0) throw std::invalid_argument("Rng::normal: sigma < 0");
  if (sigma == 0) return mean;
  std::normal_distribution<double> dist(mean, sigma);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(clamped);
  return dist(engine_);
}

int Rng::poisson(double mean) {
  if (mean < 0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0) return 0;
  std::poisson_distribution<int> dist(mean);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::index: size == 0");
  std::uniform_int_distribution<std::size_t> dist(0, size - 1);
  return dist(engine_);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("Rng::weighted_index: no positive weight");
  double target = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace pmware
