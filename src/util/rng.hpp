// Deterministic random-number utilities.
//
// Every stochastic component in PMWare takes an explicit Rng so that whole
// deployment studies replay bit-for-bit from a single seed (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace pmware {

/// Seeded pseudo-random generator wrapping std::mt19937_64 with the
/// distribution helpers used across the simulator.
class Rng {
 public:
  /// Constructs a generator from an explicit seed. The same seed always
  /// yields the same stream.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator; `salt` distinguishes siblings
  /// derived from the same parent (e.g. one child per participant).
  Rng fork(std::uint64_t salt);

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal variate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Poisson variate with the given mean (>= 0).
  int poisson(double mean);

  /// Uniformly chosen index into a container of `size` elements (size > 0).
  std::size_t index(std::size_t size);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Index chosen with probability proportional to `weights[i]`.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pmware
