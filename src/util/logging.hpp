// Lightweight leveled logger.
//
// Default level is Warn so tests and benches stay quiet; examples raise it
// to Info to narrate the middleware's behaviour.
#pragma once

#include <string>
#include <string_view>

#include "util/strfmt.hpp"

namespace pmware {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, std::string_view component, std::string_view msg);

#if defined(__GNUC__)
#define PMWARE_PRINTF(a, b) __attribute__((format(printf, a, b)))
#else
#define PMWARE_PRINTF(a, b)
#endif

PMWARE_PRINTF(2, 3)
void log_debug(const char* component, const char* fmt, ...);
PMWARE_PRINTF(2, 3)
void log_info(const char* component, const char* fmt, ...);
PMWARE_PRINTF(2, 3)
void log_warn(const char* component, const char* fmt, ...);
PMWARE_PRINTF(2, 3)
void log_error(const char* component, const char* fmt, ...);

#undef PMWARE_PRINTF

}  // namespace pmware
