// Small statistics helpers used by the evaluation harness and benches.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace pmware {

/// Streaming accumulator for count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator in, as if every sample it saw had been
  /// add()ed here (parallel Welford combination: Chan et al.). Used by the
  /// telemetry layer to merge per-thread histogram shards at snapshot time.
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Linear-interpolated percentile of `values`, q in [0, 1].
/// Throws on empty input or q outside [0, 1].
double percentile(std::span<const double> values, double q);

double mean_of(std::span<const double> values);
double median_of(std::span<const double> values);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  /// Adds another histogram's bucket counts; layouts must match exactly
  /// (same lo/hi/bucket_count) or std::invalid_argument is thrown.
  void merge(const Histogram& other);
  std::size_t bucket_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

  /// Multi-line ASCII rendering for bench output.
  std::string render(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Counter keyed by string label; used for tally-style evaluation output.
class Tally {
 public:
  void add(const std::string& key, std::size_t n = 1) { counts_[key] += n; }
  std::size_t count(const std::string& key) const;
  std::size_t total() const;
  /// Fraction of total mass under `key`; 0 if the tally is empty.
  double fraction(const std::string& key) const;
  const std::map<std::string, std::size_t>& counts() const { return counts_; }

 private:
  std::map<std::string, std::size_t> counts_;
};

}  // namespace pmware
