#include "util/simtime.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace pmware {

std::string format_time(SimTime t) {
  const std::int64_t day = day_of(t);
  const SimDuration tod = time_of_day(t);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%lld %02lld:%02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(tod / 3600),
                static_cast<long long>((tod / 60) % 60),
                static_cast<long long>(tod % 60));
  return buf;
}

std::string format_duration(SimDuration d) {
  const bool neg = d < 0;
  if (neg) d = -d;
  const std::int64_t dd = d / kSecondsPerDay;
  const SimDuration rest = d % kSecondsPerDay;
  char buf[64];
  if (dd > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld",
                  neg ? "-" : "", static_cast<long long>(dd),
                  static_cast<long long>(rest / 3600),
                  static_cast<long long>((rest / 60) % 60),
                  static_cast<long long>(rest % 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld", neg ? "-" : "",
                  static_cast<long long>(rest / 3600),
                  static_cast<long long>((rest / 60) % 60),
                  static_cast<long long>(rest % 60));
  }
  return buf;
}

TimeWindow::TimeWindow(SimTime b, SimTime e) : begin(b), end(e) {
  if (e < b) throw std::invalid_argument("TimeWindow: end < begin");
}

SimDuration TimeWindow::overlap_length(const TimeWindow& other) const {
  const SimTime lo = std::max(begin, other.begin);
  const SimTime hi = std::min(end, other.end);
  return hi > lo ? hi - lo : 0;
}

}  // namespace pmware
