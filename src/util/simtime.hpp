// Simulation time: integer seconds since the simulation epoch (day 0, 00:00).
//
// All of PMWare runs on this clock; the sensing scheduler advances it and the
// middleware never reads wall-clock time, so runs are reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace pmware {

/// Seconds since simulation epoch (midnight of day 0).
using SimTime = std::int64_t;

/// Span of simulated time, in seconds.
using SimDuration = std::int64_t;

constexpr SimDuration seconds(std::int64_t n) { return n; }
constexpr SimDuration minutes(std::int64_t n) { return n * 60; }
constexpr SimDuration hours(std::int64_t n) { return n * 3600; }
constexpr SimDuration days(std::int64_t n) { return n * 86400; }

constexpr SimDuration kSecondsPerDay = 86400;
constexpr SimDuration kSecondsPerWeek = 7 * kSecondsPerDay;

/// Day index (0-based) containing `t`. Works for t >= 0.
constexpr std::int64_t day_of(SimTime t) { return t / kSecondsPerDay; }

/// Seconds past midnight on the day containing `t`.
constexpr SimDuration time_of_day(SimTime t) {
  const SimDuration r = t % kSecondsPerDay;
  return r < 0 ? r + kSecondsPerDay : r;
}

/// Day-of-week index: 0 = Monday ... 6 = Sunday (day 0 is a Monday).
constexpr int weekday_of(SimTime t) { return static_cast<int>(day_of(t) % 7); }

/// True for Saturday/Sunday.
constexpr bool is_weekend(SimTime t) { return weekday_of(t) >= 5; }

/// Timestamp of midnight on day `day`.
constexpr SimTime start_of_day(std::int64_t day) { return day * kSecondsPerDay; }

/// "d3 14:05:09"-style human-readable rendering.
std::string format_time(SimTime t);

/// "02:30:00"-style rendering of a duration (may exceed 24h: "1d 02:30:00").
std::string format_duration(SimDuration d);

/// Closed-open interval of simulated time. `end >= begin` is an invariant
/// enforced by the constructor.
struct TimeWindow {
  SimTime begin = 0;
  SimTime end = 0;

  TimeWindow() = default;
  TimeWindow(SimTime b, SimTime e);

  SimDuration length() const { return end - begin; }
  bool contains(SimTime t) const { return t >= begin && t < end; }
  bool overlaps(const TimeWindow& other) const {
    return begin < other.end && other.begin < end;
  }
  /// Length of the intersection with `other` (0 if disjoint).
  SimDuration overlap_length(const TimeWindow& other) const;

  bool operator==(const TimeWindow&) const = default;
};

/// Daily recurring window expressed as seconds past midnight, e.g. the
/// "track between 9 AM and 6 PM" request of the §2.4 use case.
struct DailyWindow {
  SimDuration start_tod = 0;             ///< inclusive, seconds past midnight
  SimDuration end_tod = kSecondsPerDay;  ///< exclusive

  /// True if the time-of-day of `t` falls inside the window. Handles
  /// windows that wrap midnight (start > end).
  bool contains(SimTime t) const {
    const SimDuration tod = time_of_day(t);
    if (start_tod <= end_tod) return tod >= start_tod && tod < end_tod;
    return tod >= start_tod || tod < end_tod;
  }

  /// Whole-day window (always contains).
  static DailyWindow all_day() { return {0, kSecondsPerDay}; }

  bool operator==(const DailyWindow&) const = default;
};

}  // namespace pmware
