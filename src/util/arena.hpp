// Bump-pointer arena for per-participant working memory.
//
// The streaming study runner recycles one arena per worker slot: a
// participant's append-only readings (GSM observation log, visit log) are
// allocated from the slot's arena, and when the participant retires the
// arena is reset() — blocks are kept, cursors rewind, and the next
// participant's identical-shape allocations are served without touching
// the heap. After the first participant warms a slot up, the steady-state
// sampling loop performs zero arena growths (asserted in
// tests/test_population.cpp).
//
// Not thread-safe: one arena belongs to one worker slot. The allocator
// deliberately degrades to plain operator new when constructed without an
// arena, so arena-aware containers (core::ObsLog, core::VisitLog) behave
// like ordinary vectors everywhere outside the streaming runner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pmware::util {

class Arena {
 public:
  /// `first_block_bytes` sizes the initial block, allocated lazily on first
  /// use; each further block doubles the previous one.
  explicit Arena(std::size_t first_block_bytes = 1 << 16)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (block_ < blocks_.size()) {
      const std::uintptr_t base =
          reinterpret_cast<std::uintptr_t>(blocks_[block_].data.get());
      std::uintptr_t p = (base + used_ + (align - 1)) & ~(align - 1);
      if (p + bytes <= base + blocks_[block_].size) {
        used_ = p + bytes - base;
        in_use_ += bytes;
        return reinterpret_cast<void*>(p);
      }
      // Try later (already-grown) blocks before allocating a new one, so a
      // reset() arena reuses its whole block chain.
      if (block_ + 1 < blocks_.size()) {
        ++block_;
        used_ = 0;
        return allocate(bytes, align);
      }
    }
    grow(bytes + align);
    return allocate(bytes, align);
  }

  /// Rewinds every cursor; all prior allocations become invalid. Blocks are
  /// retained, so a warmed-up arena serves the next participant without
  /// growing.
  void reset() {
    block_ = 0;
    used_ = 0;
    in_use_ = 0;
    ++resets_;
  }

  /// Heap blocks ever allocated — the counting-allocator signal: steady
  /// state means this stops moving.
  std::size_t growths() const { return growths_; }
  std::size_t resets() const { return resets_; }
  /// Total bytes of all blocks (the slot's memory high-water mark).
  std::size_t capacity() const { return capacity_; }
  /// Bytes handed out since the last reset (alignment padding excluded).
  std::size_t bytes_in_use() const { return in_use_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size = next_block_bytes_;
    while (size < at_least) size *= 2;
    next_block_bytes_ = size * 2;
    blocks_.push_back({std::make_unique<std::byte[]>(size), size});
    capacity_ += size;
    ++growths_;
    block_ = blocks_.size() - 1;
    used_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< block currently bump-allocated from
  std::size_t used_ = 0;   ///< bytes consumed in blocks_[block_]
  std::size_t next_block_bytes_;
  std::size_t capacity_ = 0;
  std::size_t in_use_ = 0;
  std::size_t growths_ = 0;
  std::size_t resets_ = 0;
};

/// std::allocator-compatible handle over an Arena. Null arena = plain heap,
/// so containers parameterized on it cost nothing outside the streaming
/// runner. Deallocation is a no-op for arena-backed memory (reclaimed
/// wholesale by Arena::reset()).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ == nullptr)
      return static_cast<T*>(::operator new(n * sizeof(T)));
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const {
    return arena_ == other.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace pmware::util
