// Minimal JSON value type + parser/serializer.
//
// The simulated REST transport between the PMWare Mobile Service and the
// Cloud Instance (src/net, src/cloud) exchanges JSON bodies exactly like the
// paper's Django deployment did; this is the wire format implementation.
// Supports the full JSON data model minus \u escapes beyond BMP pass-through.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pmware {

class Json;

/// Error thrown by the parser on malformed input and by typed accessors on
/// type mismatches.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// Immutable-ish JSON value with value semantics.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : type_(Type::Number), num_(i) {}
  Json(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field access. `at` throws on missing key; `get` returns a default.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Mutating helpers: coerce this value into an object/array if null.
  Json& set(const std::string& key, Json value);
  Json& push_back(Json value);

  /// Array element access; throws on out-of-range or non-array.
  const Json& operator[](std::size_t i) const;
  std::size_t size() const;

  /// Compact serialization (no whitespace).
  std::string dump() const;
  /// Pretty serialization with 2-space indentation.
  std::string pretty() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace pmware
