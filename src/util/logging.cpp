#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace pmware {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

void vlog(LogLevel level, const char* component, const char* fmt,
          va_list args) {
  if (level < g_level.load()) return;
  char msg[1024];
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component, msg);
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

#define PMWARE_DEFINE_LOG(name, level)                       \
  void name(const char* component, const char* fmt, ...) {   \
    va_list args;                                            \
    va_start(args, fmt);                                     \
    vlog(level, component, fmt, args);                       \
    va_end(args);                                            \
  }

PMWARE_DEFINE_LOG(log_debug, LogLevel::Debug)
PMWARE_DEFINE_LOG(log_info, LogLevel::Info)
PMWARE_DEFINE_LOG(log_warn, LogLevel::Warn)
PMWARE_DEFINE_LOG(log_error, LogLevel::Error)

#undef PMWARE_DEFINE_LOG

}  // namespace pmware
