#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pmware {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(count_);
  const double n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n_a + n_b;
  mean_ += delta * n_b / n;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0 || q > 1) throw std::invalid_argument("percentile: q outside [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double median_of(std::span<const double> values) {
  return percentile(values, 0.5);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0) throw std::invalid_argument("Histogram: zero buckets");
  if (hi <= lo) throw std::invalid_argument("Histogram: hi <= lo");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size())
    throw std::invalid_argument("Histogram::merge: layout mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bucket_lo(std::size_t bucket) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket + 1);
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof(head), "[%8.2f, %8.2f) %6zu ", bucket_lo(i),
                  bucket_hi(i), counts_[i]);
    out += head;
    const std::size_t bar = counts_[i] * max_width / peak;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

std::size_t Tally::count(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::size_t Tally::total() const {
  std::size_t n = 0;
  for (const auto& [key, c] : counts_) n += c;
  return n;
}

double Tally::fraction(const std::string& key) const {
  const std::size_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(count(key)) / static_cast<double>(t);
}

}  // namespace pmware
