// printf-style std::string formatting (std::format is unavailable on the
// toolchain this project targets).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace pmware {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace pmware
