// Geodesy primitives: WGS-84 coordinates, great-circle math, bounding boxes
// and a local tangent-plane projection used by clustering algorithms.
#pragma once

#include <string>
#include <vector>

namespace pmware::geo {

/// Mean Earth radius in metres (spherical model; adequate at city scale).
inline constexpr double kEarthRadiusM = 6371000.0;

/// WGS-84 coordinate in degrees.
struct LatLng {
  double lat = 0;  ///< degrees, [-90, 90]
  double lng = 0;  ///< degrees, [-180, 180]

  bool operator==(const LatLng&) const = default;
  std::string to_string() const;
};

/// Great-circle (haversine) distance in metres.
double distance_m(const LatLng& a, const LatLng& b);

/// Initial bearing from `a` to `b`, degrees clockwise from north in [0, 360).
double bearing_deg(const LatLng& a, const LatLng& b);

/// Point reached by travelling `distance_m` metres from `origin` along
/// `bearing_deg` (degrees clockwise from north).
LatLng destination(const LatLng& origin, double bearing_deg, double distance_m);

/// Arithmetic centroid of a non-empty set of nearby points (valid at city
/// scale where curvature is negligible). Throws on empty input.
LatLng centroid(const std::vector<LatLng>& points);

/// Point linearly interpolated between `a` and `b`; frac in [0,1].
LatLng lerp(const LatLng& a, const LatLng& b, double frac);

/// Axis-aligned bounding box in degrees.
struct BoundingBox {
  double min_lat = 0, min_lng = 0, max_lat = 0, max_lng = 0;

  bool contains(const LatLng& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lng >= min_lng &&
           p.lng <= max_lng;
  }
  LatLng center() const { return {(min_lat + max_lat) / 2, (min_lng + max_lng) / 2}; }

  /// Smallest box containing all `points`; throws on empty input.
  static BoundingBox of(const std::vector<LatLng>& points);
  /// Box expanded by `margin_m` metres on every side.
  BoundingBox expanded(double margin_m) const;
};

/// East-north offset in metres of `p` relative to `origin` (equirectangular
/// local projection — accurate to << 1 m over a city).
struct EnuOffset {
  double east_m = 0;
  double north_m = 0;
};
EnuOffset to_enu(const LatLng& origin, const LatLng& p);
LatLng from_enu(const LatLng& origin, const EnuOffset& offset);

}  // namespace pmware::geo
