#include "geo/polyline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pmware::geo {

double polyline_length_m(const std::vector<LatLng>& line) {
  double total = 0;
  for (std::size_t i = 1; i < line.size(); ++i)
    total += distance_m(line[i - 1], line[i]);
  return total;
}

LatLng point_along(const std::vector<LatLng>& line, double along_m) {
  if (line.empty()) throw std::invalid_argument("point_along: empty polyline");
  if (along_m <= 0) return line.front();
  for (std::size_t i = 1; i < line.size(); ++i) {
    const double seg = distance_m(line[i - 1], line[i]);
    if (along_m <= seg && seg > 0) return lerp(line[i - 1], line[i], along_m / seg);
    along_m -= seg;
  }
  return line.back();
}

std::vector<LatLng> resample(const std::vector<LatLng>& line, double spacing_m) {
  if (line.empty()) throw std::invalid_argument("resample: empty polyline");
  if (spacing_m <= 0) throw std::invalid_argument("resample: spacing <= 0");
  const double total = polyline_length_m(line);
  std::vector<LatLng> out;
  out.push_back(line.front());
  for (double along = spacing_m; along < total; along += spacing_m)
    out.push_back(point_along(line, along));
  if (line.size() > 1) out.push_back(line.back());
  return out;
}

namespace {

// Distance from point to segment in the local tangent plane around `a`.
double distance_to_segment_m(const LatLng& p, const LatLng& a, const LatLng& b) {
  const EnuOffset pe = to_enu(a, p);
  const EnuOffset be = to_enu(a, b);
  const double len2 = be.east_m * be.east_m + be.north_m * be.north_m;
  if (len2 == 0) return distance_m(p, a);
  double t = (pe.east_m * be.east_m + pe.north_m * be.north_m) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = pe.east_m - t * be.east_m;
  const double dy = pe.north_m - t * be.north_m;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

double distance_to_polyline_m(const LatLng& p, const std::vector<LatLng>& line) {
  if (line.empty())
    throw std::invalid_argument("distance_to_polyline_m: empty polyline");
  if (line.size() == 1) return distance_m(p, line[0]);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < line.size(); ++i)
    best = std::min(best, distance_to_segment_m(p, line[i - 1], line[i]));
  return best;
}

}  // namespace pmware::geo
