#include "geo/latlng.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

namespace pmware::geo {

namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;

}  // namespace

std::string LatLng::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f)", lat, lng);
  return buf;
}

double distance_m(const LatLng& a, const LatLng& b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dphi = (b.lat - a.lat) * kDegToRad;
  const double dlmb = (b.lng - a.lng) * kDegToRad;
  const double s1 = std::sin(dphi / 2);
  const double s2 = std::sin(dlmb / 2);
  const double h = s1 * s1 + std::cos(phi1) * std::cos(phi2) * s2 * s2;
  return 2 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double bearing_deg(const LatLng& a, const LatLng& b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dlmb = (b.lng - a.lng) * kDegToRad;
  const double y = std::sin(dlmb) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlmb);
  const double theta = std::atan2(y, x) * kRadToDeg;
  return std::fmod(theta + 360.0, 360.0);
}

LatLng destination(const LatLng& origin, double bearing, double dist) {
  const double delta = dist / kEarthRadiusM;
  const double theta = bearing * kDegToRad;
  const double phi1 = origin.lat * kDegToRad;
  const double lmb1 = origin.lng * kDegToRad;
  const double phi2 = std::asin(std::sin(phi1) * std::cos(delta) +
                                std::cos(phi1) * std::sin(delta) * std::cos(theta));
  const double lmb2 =
      lmb1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(phi1),
                        std::cos(delta) - std::sin(phi1) * std::sin(phi2));
  return {phi2 * kRadToDeg,
          std::fmod(lmb2 * kRadToDeg + 540.0, 360.0) - 180.0};
}

LatLng centroid(const std::vector<LatLng>& points) {
  if (points.empty()) throw std::invalid_argument("centroid: empty input");
  double lat = 0, lng = 0;
  for (const auto& p : points) {
    lat += p.lat;
    lng += p.lng;
  }
  const auto n = static_cast<double>(points.size());
  return {lat / n, lng / n};
}

LatLng lerp(const LatLng& a, const LatLng& b, double frac) {
  return {a.lat + (b.lat - a.lat) * frac, a.lng + (b.lng - a.lng) * frac};
}

BoundingBox BoundingBox::of(const std::vector<LatLng>& points) {
  if (points.empty()) throw std::invalid_argument("BoundingBox::of: empty input");
  BoundingBox box{points[0].lat, points[0].lng, points[0].lat, points[0].lng};
  for (const auto& p : points) {
    box.min_lat = std::min(box.min_lat, p.lat);
    box.max_lat = std::max(box.max_lat, p.lat);
    box.min_lng = std::min(box.min_lng, p.lng);
    box.max_lng = std::max(box.max_lng, p.lng);
  }
  return box;
}

BoundingBox BoundingBox::expanded(double margin_m) const {
  const double dlat = margin_m / kEarthRadiusM * kRadToDeg;
  const double cos_lat =
      std::max(0.01, std::cos(center().lat * kDegToRad));
  const double dlng = dlat / cos_lat;
  return {min_lat - dlat, min_lng - dlng, max_lat + dlat, max_lng + dlng};
}

EnuOffset to_enu(const LatLng& origin, const LatLng& p) {
  const double cos_lat = std::cos(origin.lat * kDegToRad);
  return {(p.lng - origin.lng) * kDegToRad * kEarthRadiusM * cos_lat,
          (p.lat - origin.lat) * kDegToRad * kEarthRadiusM};
}

LatLng from_enu(const LatLng& origin, const EnuOffset& offset) {
  const double cos_lat = std::cos(origin.lat * kDegToRad);
  return {origin.lat + offset.north_m / kEarthRadiusM * kRadToDeg,
          origin.lng + offset.east_m / (kEarthRadiusM * cos_lat) * kRadToDeg};
}

}  // namespace pmware::geo
