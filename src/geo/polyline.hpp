// Polyline helpers used for routes: length, interpolation along the line,
// resampling at fixed spacing, and point-to-line distance.
#pragma once

#include <vector>

#include "geo/latlng.hpp"

namespace pmware::geo {

/// Total length of the polyline in metres (0 for fewer than 2 points).
double polyline_length_m(const std::vector<LatLng>& line);

/// Point at `along_m` metres from the start of the polyline (clamped to the
/// endpoints). Throws on an empty polyline.
LatLng point_along(const std::vector<LatLng>& line, double along_m);

/// Resamples a polyline to points spaced `spacing_m` apart (endpoints always
/// included). Throws on empty line or non-positive spacing.
std::vector<LatLng> resample(const std::vector<LatLng>& line, double spacing_m);

/// Minimum distance from `p` to any segment of the polyline, metres.
/// Throws on an empty polyline.
double distance_to_polyline_m(const LatLng& p, const std::vector<LatLng>& line);

}  // namespace pmware::geo
