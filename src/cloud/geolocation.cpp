#include "cloud/geolocation.hpp"

#include <vector>

namespace pmware::cloud {

std::optional<geo::LatLng> GeoLocationService::locate_cell(
    const world::CellId& cell) const {
  const auto it = cell_db_.find(cell);
  if (it == cell_db_.end()) return std::nullopt;
  return it->second;
}

std::optional<geo::LatLng> GeoLocationService::locate_signature(
    const algorithms::PlaceSignature& sig) const {
  if (const auto* c = std::get_if<algorithms::CellSignature>(&sig)) {
    std::vector<geo::LatLng> known;
    for (const auto& cell : c->cells)
      if (const auto pos = locate_cell(cell)) known.push_back(*pos);
    if (known.empty()) return std::nullopt;
    return geo::centroid(known);
  }
  if (const auto* w = std::get_if<algorithms::WifiSignature>(&sig)) {
    std::vector<geo::LatLng> known;
    for (world::Bssid b : w->aps) {
      const auto it = ap_db_.find(b);
      if (it != ap_db_.end()) known.push_back(it->second);
    }
    if (known.empty()) return std::nullopt;
    return geo::centroid(known);
  }
  return std::get<algorithms::GpsSignature>(sig).center;
}

}  // namespace pmware::cloud
