#include "cloud/token_service.hpp"

#include "util/strfmt.hpp"

namespace pmware::cloud {

TokenService::TokenService(Rng rng, SimDuration token_ttl)
    : rng_(rng), ttl_(token_ttl) {}

std::string TokenService::mint_token() {
  return strfmt("tok-%016llx%016llx",
                static_cast<unsigned long long>(rng_.engine()()),
                static_cast<unsigned long long>(rng_.engine()()));
}

TokenGrant TokenService::register_device(const std::string& imei,
                                         const std::string& email,
                                         SimTime now) {
  const std::scoped_lock lock(mu_);
  const auto key = std::make_pair(imei, email);
  auto it = devices_.find(key);
  if (it == devices_.end())
    it = devices_.emplace(key, next_user_++).first;

  TokenGrant grant;
  grant.user = it->second;
  grant.token = mint_token();
  grant.expires_at = now + ttl_;
  tokens_[grant.token] = {grant.user, grant.expires_at};
  return grant;
}

std::optional<TokenGrant> TokenService::refresh(const std::string& token,
                                                SimTime now) {
  const std::scoped_lock lock(mu_);
  const auto it = tokens_.find(token);
  if (it == tokens_.end() || it->second.expires_at <= now) return std::nullopt;
  TokenGrant grant;
  grant.user = it->second.user;
  grant.token = mint_token();
  grant.expires_at = now + ttl_;
  tokens_.erase(it);
  tokens_[grant.token] = {grant.user, grant.expires_at};
  return grant;
}

std::optional<world::DeviceId> TokenService::validate(const std::string& token,
                                                      SimTime now) const {
  const std::scoped_lock lock(mu_);
  const auto it = tokens_.find(token);
  if (it == tokens_.end() || it->second.expires_at <= now) return std::nullopt;
  return it->second.user;
}

}  // namespace pmware::cloud
