#include "cloud/token_service.hpp"

#include "cache/digest.hpp"
#include "util/strfmt.hpp"

namespace pmware::cloud {

TokenService::TokenService(Rng rng, SimDuration token_ttl)
    : rng_(rng), ttl_(token_ttl) {}

TokenService::TokenShard& TokenService::shard_of(
    const std::string& token) const {
  return token_shards_[cache::fnv1a(token) % kTokenShards];
}

std::string TokenService::mint_token() {
  return strfmt("tok-%016llx%016llx",
                static_cast<unsigned long long>(rng_.engine()()),
                static_cast<unsigned long long>(rng_.engine()()));
}

TokenGrant TokenService::register_device(const std::string& imei,
                                         const std::string& email,
                                         SimTime now) {
  TokenGrant grant;
  {
    const std::scoped_lock lock(reg_mu_);
    const auto key = std::make_pair(imei, email);
    auto it = devices_.find(key);
    if (it == devices_.end())
      it = devices_.emplace(key, DeviceInfo{next_user_++, 0}).first;
    grant.user = it->second.user;
    grant.session = ++it->second.sessions;
    grant.token = mint_token();
  }
  grant.expires_at = now + ttl_;
  // Registration lock released before the token-shard lock: no operation
  // ever holds both, so the two lock families cannot deadlock.
  TokenShard& shard = shard_of(grant.token);
  const std::scoped_lock lock(shard.mu);
  shard.tokens[grant.token] = {grant.user, grant.expires_at};
  return grant;
}

std::optional<TokenGrant> TokenService::refresh(const std::string& token,
                                                SimTime now) {
  TokenGrant grant;
  {
    TokenShard& shard = shard_of(token);
    const std::scoped_lock lock(shard.mu);
    const auto it = shard.tokens.find(token);
    if (it == shard.tokens.end() || it->second.expires_at <= now)
      return std::nullopt;
    grant.user = it->second.user;
    // The old token dies the moment the exchange is decided; only its
    // owner (the device refreshing it) could race this, so the gap before
    // the replacement lands in its own shard is unobservable.
    shard.tokens.erase(it);
  }
  {
    const std::scoped_lock lock(reg_mu_);
    grant.token = mint_token();
  }
  grant.expires_at = now + ttl_;
  TokenShard& shard = shard_of(grant.token);
  const std::scoped_lock lock(shard.mu);
  shard.tokens[grant.token] = {grant.user, grant.expires_at};
  return grant;
}

std::optional<world::DeviceId> TokenService::validate(const std::string& token,
                                                      SimTime now) const {
  const TokenShard& shard = shard_of(token);
  const std::scoped_lock lock(shard.mu);
  const auto it = shard.tokens.find(token);
  if (it == shard.tokens.end() || it->second.expires_at <= now)
    return std::nullopt;
  return it->second.user;
}

std::size_t TokenService::token_count() const {
  std::size_t n = 0;
  for (const TokenShard& shard : token_shards_) {
    const std::scoped_lock lock(shard.mu);
    n += shard.tokens.size();
  }
  return n;
}

}  // namespace pmware::cloud
