#include "cloud/storage.hpp"

#include <algorithm>

namespace pmware::cloud {

std::vector<core::PlaceVisitEntry> CloudStorage::visits_at(
    world::DeviceId user, core::PlaceUid place) const {
  std::vector<core::PlaceVisitEntry> out;
  const UserStore* store = find_user(user);
  if (store == nullptr) return out;
  for (const auto& [day, profile] : store->profiles) {
    for (const auto& visit : profile.places)
      if (visit.place == place) out.push_back(visit);
  }
  return out;
}

bool CloudStorage::erase_place(world::DeviceId id, core::PlaceUid place) {
  const auto it = users_.find(id);
  if (it == users_.end()) return false;
  const bool existed = it->second.places.erase(place) > 0;
  for (auto& [day, profile] : it->second.profiles) {
    std::erase_if(profile.places, [place](const core::PlaceVisitEntry& e) {
      return e.place == place;
    });
  }
  std::erase_if(it->second.encounters, [place](const core::EncounterEntry& e) {
    return e.place == place;
  });
  return existed;
}

std::vector<core::PlaceVisitEntry> CloudStorage::stitched_visits_at(
    world::DeviceId user, core::PlaceUid place) const {
  std::vector<core::PlaceVisitEntry> raw = visits_at(user, place);
  std::sort(raw.begin(), raw.end(),
            [](const core::PlaceVisitEntry& a, const core::PlaceVisitEntry& b) {
              return a.arrival < b.arrival;
            });
  std::vector<core::PlaceVisitEntry> out;
  for (const auto& entry : raw) {
    if (!out.empty() && out.back().departure == entry.arrival &&
        time_of_day(entry.arrival) == 0) {
      out.back().departure = entry.departure;  // midnight continuation
    } else {
      out.push_back(entry);
    }
  }
  return out;
}

}  // namespace pmware::cloud
