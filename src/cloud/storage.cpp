#include "cloud/storage.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "cache/digest.hpp"
#include "core/codec.hpp"
#include "telemetry/metrics.hpp"

namespace pmware::cloud {

namespace {

using cache::fnv1a;

/// splitmix64 finalizer: fixed mixing so shard placement is identical
/// across platforms (std::hash would not be).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Canonical content blob of one user's store with the cloud-assigned user
/// id normalized out (it depends on registration order, which is
/// scheduling-dependent in parallel studies).
std::uint64_t user_digest(const UserStore& store) {
  std::string blob;
  blob.reserve(4096);
  for (const auto& [uid, record] : store.places) {
    blob += 'P';
    blob += std::to_string(uid);
    blob += core::to_json(record).dump();
  }
  for (const auto& [day, profile] : store.profiles) {
    core::MobilityProfile normalized = profile;
    normalized.user = 0;
    blob += 'M';
    blob += core::to_json(normalized).dump();
  }
  for (const auto& route : store.routes.routes()) {
    const algorithms::RouteObservation& rep = route.representative;
    blob += 'R';
    blob += std::to_string(rep.from_place);
    blob += ',';
    blob += std::to_string(rep.to_place);
    blob += ',';
    blob += std::to_string(rep.window.begin);
    blob += ',';
    blob += std::to_string(rep.window.end);
    for (std::size_t i = 0; i < rep.gps.times.size(); ++i) {
      blob += std::to_string(rep.gps.times[i]);
      blob += core::to_json(rep.gps.points[i]).dump();
    }
    for (std::size_t i = 0; i < rep.cells.times.size(); ++i) {
      blob += std::to_string(rep.cells.times[i]);
      blob += core::to_json(rep.cells.cells[i]).dump();
    }
    blob += '#';
    blob += std::to_string(route.use_count);
  }
  for (const auto& e : store.encounters) {
    blob += 'E';
    blob += std::to_string(e.contact);
    blob += ',';
    blob += std::to_string(e.place);
    blob += ',';
    blob += std::to_string(e.start);
    blob += ',';
    blob += std::to_string(e.end);
  }
  return fnv1a(blob);
}

}  // namespace

CloudStorage::CloudStorage(std::size_t shards)
    : shards_(std::max<std::size_t>(shards, 1)) {}

CloudStorage::CloudStorage(const CloudStorage& other)
    : shards_(other.shard_count()) {
  const auto locks = other.lock_all();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].users = other.shards_[s].users;
    shards_[s].tombstones = other.shards_[s].tombstones;
  }
  archived_.copy_from(other.archived_);
}

CloudStorage& CloudStorage::operator=(const CloudStorage& other) {
  if (this == &other) return *this;
  // Copy out under the source's locks, then redistribute into this
  // storage's shard layout (the counts may differ).
  std::map<world::DeviceId, UserStore> users;
  std::map<world::DeviceId, std::uint64_t> tombstones;
  {
    const auto locks = other.lock_all();
    for (const Shard& shard : other.shards_) {
      for (const auto& [id, store] : shard.users) users[id] = store;
      for (const auto& [id, session] : shard.tombstones)
        tombstones[id] = session;
    }
  }
  const auto locks = lock_all();
  for (Shard& shard : shards_) {
    shard.users.clear();
    shard.tombstones.clear();
  }
  for (auto& [id, store] : users)
    shards_[shard_of(id)].users[id] = std::move(store);
  for (const auto& [id, session] : tombstones)
    shards_[shard_of(id)].tombstones[id] = session;
  // Wholesale replacement mutates every shard: advance the write marks so
  // analytics cache entries tagged against the old content can never
  // validate against the new.
  for (Shard& shard : shards_)
    shard.writes.fetch_add(1, std::memory_order_release);
  archived_.copy_from(other.archived_);
  return *this;
}

std::size_t CloudStorage::shard_of(world::DeviceId id) const {
  return static_cast<std::size_t>(mix64(id) % shards_.size());
}

std::unique_lock<std::mutex> CloudStorage::lock_shard(std::size_t s) const {
  std::unique_lock<std::mutex> lock(shards_[s].mu, std::try_to_lock);
  double wait_us = 0;
  if (!lock.owns_lock()) {
    const auto begin = std::chrono::steady_clock::now();
    lock.lock();
    wait_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - begin)
            .count();
  }
  auto& reg = telemetry::registry();
  reg.counter("cloud_shard_requests_total", {{"shard", std::to_string(s)}},
              "storage operations routed to each cloud shard")
      .inc();
  reg.histogram("cloud_shard_lock_wait_us", {}, 0, 1000, 20,
                "time spent waiting for a shard lock, microseconds "
                "(0 = uncontended)")
      .observe(wait_us);
  return lock;
}

std::vector<std::unique_lock<std::mutex>> CloudStorage::lock_all() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  // Ascending shard order — the documented total order that keeps the
  // snapshot path deadlock-free against single-shard holders.
  for (std::size_t s = 0; s < shards_.size(); ++s)
    locks.push_back(lock_shard(s));
  return locks;
}

CloudStorage::UserLock CloudStorage::locked_user(world::DeviceId id) {
  const std::size_t s = shard_of(id);
  auto lock = lock_shard(s);
  return UserLock(std::move(lock), &shards_[s].users[id]);
}

std::size_t CloudStorage::user_count() const {
  std::size_t n = 0;
  const auto locks = lock_all();
  for (const Shard& shard : shards_) n += shard.users.size();
  return n;
}

CloudStorage::Stats CloudStorage::stats() const {
  // Archived (retired) users still count: the accumulators were folded at
  // archive time, so the aggregate is invariant under mid-run retirement.
  Stats s;
  s.users = archived_.users.load(std::memory_order_relaxed);
  s.places = archived_.places.load(std::memory_order_relaxed);
  s.profiles = archived_.profiles.load(std::memory_order_relaxed);
  s.routes = archived_.routes.load(std::memory_order_relaxed);
  s.encounters = archived_.encounters.load(std::memory_order_relaxed);
  const auto locks = lock_all();
  for (const Shard& shard : shards_) {
    s.users += shard.users.size();
    for (const auto& [id, store] : shard.users) {
      s.places += store.places.size();
      s.profiles += store.profiles.size();
      s.routes += store.routes.routes().size();
      s.encounters += store.encounters.size();
    }
  }
  return s;
}

std::uint64_t CloudStorage::content_digest() const {
  // Per-user digests combine by addition (commutative): the digest is the
  // same whatever shard layout, registration order, or archive schedule put
  // the users where they are.
  std::uint64_t digest = archived_.digest.load(std::memory_order_relaxed);
  const auto locks = lock_all();
  for (const Shard& shard : shards_)
    for (const auto& [id, store] : shard.users) digest += user_digest(store);
  return digest;
}

bool CloudStorage::archive_user(world::DeviceId id) {
  bool archived = false;
  {
    const std::size_t s = shard_of(id);
    const auto lock = lock_shard(s);
    auto& users = shards_[s].users;
    const auto it = users.find(id);
    if (it == users.end()) return false;
    const UserStore& store = it->second;
    archived_.users.fetch_add(1, std::memory_order_relaxed);
    archived_.places.fetch_add(store.places.size(), std::memory_order_relaxed);
    archived_.profiles.fetch_add(store.profiles.size(),
                                 std::memory_order_relaxed);
    archived_.routes.fetch_add(store.routes.routes().size(),
                               std::memory_order_relaxed);
    archived_.encounters.fetch_add(store.encounters.size(),
                                   std::memory_order_relaxed);
    archived_.digest.fetch_add(user_digest(store), std::memory_order_relaxed);
    users.erase(it);
    archived = true;
  }
  note_write(id);
  telemetry::registry()
      .counter("cloud_users_archived_total", {},
               "users retired into the archived accumulators")
      .inc();
  return archived;
}

bool CloudStorage::erase_user(world::DeviceId id, std::uint64_t wipe_session) {
  bool erased = false;
  bool tombstoned = false;
  {
    const std::size_t s = shard_of(id);
    const auto lock = lock_shard(s);
    erased = shards_[s].users.erase(id) > 0;
    if (wipe_session > 0) {
      std::uint64_t& tombstone = shards_[s].tombstones[id];
      tombstoned = wipe_session > tombstone;
      tombstone = std::max(tombstone, wipe_session);
    }
  }
  if (erased || tombstoned) note_write(id);
  if (tombstoned)
    telemetry::registry()
        .counter("cloud_wipe_tombstones_total", {},
                 "privacy wipes that raised a device's session tombstone")
        .inc();
  return erased;
}

bool CloudStorage::write_allowed(world::DeviceId id,
                                 std::uint64_t session) const {
  const std::size_t s = shard_of(id);
  const auto lock = lock_shard(s);
  const auto it = shards_[s].tombstones.find(id);
  return it == shards_[s].tombstones.end() || session > it->second;
}

std::uint64_t CloudStorage::tombstone_session(world::DeviceId id) const {
  const std::size_t s = shard_of(id);
  const auto lock = lock_shard(s);
  const auto it = shards_[s].tombstones.find(id);
  return it == shards_[s].tombstones.end() ? 0 : it->second;
}

bool CloudStorage::erase_place(world::DeviceId id, core::PlaceUid place) {
  bool existed = false;
  {
    const std::size_t s = shard_of(id);
    const auto lock = lock_shard(s);
    auto& users = shards_[s].users;
    const auto it = users.find(id);
    if (it == users.end()) return false;
    existed = it->second.places.erase(place) > 0;
    for (auto& [day, profile] : it->second.profiles) {
      std::erase_if(profile.places, [place](const core::PlaceVisitEntry& e) {
        return e.place == place;
      });
    }
    std::erase_if(it->second.encounters, [place](const core::EncounterEntry& e) {
      return e.place == place;
    });
  }
  note_write(id);
  return existed;
}

std::vector<core::PlaceVisitEntry> CloudStorage::visits_at(
    world::DeviceId user, core::PlaceUid place) const {
  return with_user(user, [place](const UserStore* store) {
    std::vector<core::PlaceVisitEntry> out;
    if (store == nullptr) return out;
    for (const auto& [day, profile] : store->profiles) {
      for (const auto& visit : profile.places)
        if (visit.place == place) out.push_back(visit);
    }
    return out;
  });
}

std::vector<core::PlaceVisitEntry> CloudStorage::stitched_visits_at(
    world::DeviceId user, core::PlaceUid place) const {
  std::vector<core::PlaceVisitEntry> raw = visits_at(user, place);
  std::sort(raw.begin(), raw.end(),
            [](const core::PlaceVisitEntry& a, const core::PlaceVisitEntry& b) {
              return a.arrival < b.arrival;
            });
  std::vector<core::PlaceVisitEntry> out;
  for (const auto& entry : raw) {
    if (!out.empty() && out.back().departure == entry.arrival &&
        time_of_day(entry.arrival) == 0) {
      out.back().departure = entry.departure;  // midnight continuation
    } else {
      out.push_back(entry);
    }
  }
  return out;
}

}  // namespace pmware::cloud
