#include "cloud/analytics.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "util/stats.hpp"

namespace pmware::cloud {

std::optional<SimDuration> AnalyticsEngine::typical_arrival_tod(
    world::DeviceId user, core::PlaceUid place, DailyWindow window) const {
  RunningStats stats;
  for (const auto& visit : storage_->stitched_visits_at(user, place)) {
    if (!window.contains(visit.arrival)) continue;
    stats.add(static_cast<double>(time_of_day(visit.arrival)));
  }
  if (stats.count() == 0) return std::nullopt;
  return static_cast<SimDuration>(stats.mean());
}

std::optional<SimTime> AnalyticsEngine::predict_next_visit(
    world::DeviceId user, core::PlaceUid place, SimTime now,
    double min_day_probability) const {
  const auto visits = storage_->stitched_visits_at(user, place);
  if (visits.empty()) return std::nullopt;

  // Per-weekday visit statistics.
  std::array<int, 7> visit_days{};   // days-of-week with >= 1 visit
  std::array<RunningStats, 7> arrival_tod{};
  std::int64_t min_day = day_of(visits.front().arrival);
  std::int64_t max_day = min_day;
  std::array<std::set<std::int64_t>, 7> distinct_days{};
  for (const auto& v : visits) {
    const std::int64_t d = day_of(v.arrival);
    min_day = std::min(min_day, d);
    max_day = std::max(max_day, d);
    const int wd = static_cast<int>(d % 7);
    distinct_days[static_cast<std::size_t>(wd)].insert(d);
    arrival_tod[static_cast<std::size_t>(wd)].add(
        static_cast<double>(time_of_day(v.arrival)));
  }
  // Number of times each weekday occurred in the observation span.
  const std::int64_t span_days = max_day - min_day + 1;
  std::array<int, 7> occurrences{};
  for (std::int64_t d = min_day; d <= max_day; ++d)
    ++occurrences[static_cast<std::size_t>(d % 7)];
  for (int wd = 0; wd < 7; ++wd)
    visit_days[static_cast<std::size_t>(wd)] =
        static_cast<int>(distinct_days[static_cast<std::size_t>(wd)].size());
  (void)span_days;

  // Scan forward up to two weeks for the first plausible day — starting
  // with *today* if the typical arrival time has not passed yet ("when is
  // the next visit?" asked at noon should answer "this evening").
  for (std::int64_t d = day_of(now); d <= day_of(now) + 14; ++d) {
    const auto wd = static_cast<std::size_t>(d % 7);
    if (occurrences[wd] == 0) continue;
    const double prob = static_cast<double>(visit_days[wd]) /
                        static_cast<double>(occurrences[wd]);
    if (prob < min_day_probability) continue;
    if (arrival_tod[wd].count() == 0) continue;
    const SimTime predicted =
        start_of_day(d) + static_cast<SimDuration>(arrival_tod[wd].mean());
    if (predicted <= now) continue;  // today's typical time already passed
    return predicted;
  }
  return std::nullopt;
}

std::optional<SimDuration> AnalyticsEngine::typical_departure_tod(
    world::DeviceId user, core::PlaceUid place, DailyWindow window) const {
  RunningStats stats;
  for (const auto& visit : storage_->stitched_visits_at(user, place)) {
    if (!window.contains(visit.departure)) continue;
    // A departure at exactly a day end is an unstitched truncation (end of
    // study), not a real departure.
    if (time_of_day(visit.departure) == 0) continue;
    stats.add(static_cast<double>(time_of_day(visit.departure)));
  }
  if (stats.count() == 0) return std::nullopt;
  return static_cast<SimDuration>(stats.mean());
}

std::optional<AnalyticsEngine::NextPlace> AnalyticsEngine::predict_next_place(
    world::DeviceId user, core::PlaceUid current) const {
  // Flatten all profile entries into one time-ordered sequence of stays —
  // copied out under the owning shard's lock, analyzed outside it.
  std::vector<core::PlaceVisitEntry> sequence;
  const bool known =
      storage_->with_user(user, [&sequence](const UserStore* store) {
        if (store == nullptr) return false;
        for (const auto& [day, profile] : store->profiles)
          sequence.insert(sequence.end(), profile.places.begin(),
                          profile.places.end());
        return true;
      });
  if (!known) return std::nullopt;
  std::sort(sequence.begin(), sequence.end(),
            [](const core::PlaceVisitEntry& a, const core::PlaceVisitEntry& b) {
              return a.arrival < b.arrival;
            });

  // Count transitions out of `current` (skipping midnight continuations and
  // consecutive same-place entries).
  std::map<core::PlaceUid, int> counts;
  int total = 0;
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    if (sequence[i].place != current) continue;
    const core::PlaceUid next = sequence[i + 1].place;
    if (next == current) continue;
    // A gap of more than 6 hours means the log lost track in between; such
    // pairs are not evidence of a direct transition.
    if (sequence[i + 1].arrival - sequence[i].departure > hours(6)) continue;
    ++counts[next];
    ++total;
  }
  if (total == 0) return std::nullopt;
  NextPlace best;
  for (const auto& [place, count] : counts) {
    const double probability = static_cast<double>(count) / total;
    if (probability > best.probability) best = {place, probability};
  }
  return best;
}

std::int64_t AnalyticsEngine::observed_days(world::DeviceId user) const {
  return storage_->with_user(user, [](const UserStore* store) -> std::int64_t {
    if (store == nullptr || store->profiles.empty()) return 1;
    return static_cast<std::int64_t>(store->profiles.size());
  });
}

double AnalyticsEngine::visit_frequency_per_week(
    world::DeviceId user, std::span<const core::PlaceUid> places) const {
  std::size_t visits = 0;
  for (const core::PlaceUid place : places)
    visits += storage_->visits_at(user, place).size();
  const double weeks =
      static_cast<double>(observed_days(user)) / 7.0;
  return weeks <= 0 ? 0.0 : static_cast<double>(visits) / weeks;
}

}  // namespace pmware::cloud
