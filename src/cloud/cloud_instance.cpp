#include "cloud/cloud_instance.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "algorithms/gca.hpp"
#include "cache/etag.hpp"
#include "core/codec.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/strfmt.hpp"

namespace pmware::cloud {

using net::HttpRequest;
using net::HttpResponse;
using net::PathParams;

namespace {

/// Metric-series names of the two cloud-side content caches.
constexpr const char* kGcaCacheName = "cloud_gca";
constexpr const char* kAnalyticsCacheName = "cloud_analytics";
constexpr std::size_t kAnalyticsCacheCapacity = 1024;

/// The registration session the request claims to act under (0 if absent).
std::uint64_t request_session(const HttpRequest& request) {
  const auto it = request.headers.find(net::kSessionHeader);
  if (it == request.headers.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace

CloudInstance::CloudInstance(CloudConfig config, GeoLocationService geoloc,
                             Rng rng)
    : config_(config),
      geoloc_(std::move(geoloc)),
      tokens_(rng, config.token_ttl),
      storage_(config.shards),
      analytics_(&storage_) {
  if (config_.cache) {
    analytics_cache_ =
        std::make_unique<cache::ContentCache<std::string, CachedResponse>>(
            kAnalyticsCacheName, kAnalyticsCacheCapacity);
  }
  register_routes();
  // Per-route request counters and handler-cost histograms. Patterns (not
  // concrete paths) label the series, so cardinality stays bounded by the
  // route table.
  router_.set_observer([this](net::Method method, const std::string& pattern,
                              int status, double wall_us) {
    auto& reg = telemetry::registry();
    reg.counter("cloud_requests_total",
                {{"method", net::to_string(method)},
                 {"route", pattern},
                 {"status", strfmt("%d", status)}},
                "REST requests handled by the cloud instance")
        .inc();
    reg.histogram("cloud_handler_wall_us", {{"route", pattern}}, 0, 5000, 20,
                  "wall-clock handler cost per request, microseconds")
        .observe(wall_us);
    if (wall_us > config_.slo_wall_us) {
      reg.counter("cloud_slo_violations_total", {{"route", pattern}},
                  "requests whose wall-clock handler cost exceeded the SLO")
          .inc();
      // Debug, not warn: a loaded study violates the SLO often enough that
      // per-event stderr lines would drown everything; the counter (and
      // /tracez) is the actionable surface.
      telemetry::slog_debug(
          "cloud", 0, "SLO violation: %s took %.0f us (threshold %.0f us)",
          pattern.c_str(), wall_us, config_.slo_wall_us);
    }
  });
  // Scripted server-side chaos (outages, error rates, latency): evaluated
  // by the router before guards and handlers, so injected failures never
  // mutate state. The plan's decisions are deterministic per request
  // (net/fault.hpp), keeping faulted studies reproducible across thread
  // and shard counts.
  if (!config_.fault_plan.empty()) {
    telemetry::slog_info("cloud", 0, "fault plan active: %s",
                         config_.fault_plan.describe().c_str());
    router_.set_fault_injector([this](const HttpRequest& request) {
      const net::FaultOutcome outcome = config_.fault_plan.evaluate(request);
      auto& reg = telemetry::registry();
      if (outcome.reject)
        reg.counter("cloud_faults_injected_total", {{"kind", "error"}},
                    "fault-plan interventions (errors injected, latency added)")
            .inc();
      if (outcome.added_latency_s > 0)
        reg.counter("cloud_faults_injected_total", {{"kind", "latency"}},
                    "fault-plan interventions (errors injected, latency added)")
            .inc();
      return outcome;
    });
  }
}

SimTime CloudInstance::request_time(const HttpRequest& request) {
  return request.sim_time();
}

std::optional<world::DeviceId> CloudInstance::authed_user(
    const HttpRequest& request) const {
  const auto it = request.headers.find("Authorization");
  if (it == request.headers.end()) return std::nullopt;
  const std::string& value = it->second;
  constexpr const char* kPrefix = "Bearer ";
  if (value.rfind(kPrefix, 0) != 0) return std::nullopt;
  return tokens_.validate(value.substr(7), request_time(request));
}

HttpResponse CloudInstance::conditional(const HttpRequest& request,
                                        HttpResponse response) {
  if (!response.ok()) return response;
  // Strong ETag over the serialized body: valid because these responses
  // are pure functions of the last writes (the place PUT/GET purity
  // regression test pins the riskiest case).
  const std::string etag = cache::strong_etag(response.body.dump());
  response.headers[net::kETagHeader] = etag;
  const auto inm = request.headers.find(net::kIfNoneMatchHeader);
  if (inm == request.headers.end() || !cache::etag_matches(inm->second, etag))
    return response;
  HttpResponse not_modified;
  not_modified.status = net::kStatusNotModified;  // body stays null
  not_modified.headers[net::kETagHeader] = etag;
  return not_modified;
}

HttpResponse CloudInstance::analytics_cached(
    const HttpRequest& request, world::DeviceId user, bool time_sensitive,
    const std::function<HttpResponse()>& compute) {
  if (!analytics_cache_) return compute();
  std::string key = request.path;
  for (const auto& [k, v] : request.query) {
    key += '&';
    key += k;
    key += '=';
    key += v;
  }
  if (time_sensitive) {
    key += "@t";
    key += std::to_string(request_time(request));
  }
  // Sample the mark BEFORE computing: if a write lands mid-compute its
  // note_write makes the current mark newer than this tag, so a possibly
  // half-updated result can be cached but never served again.
  const std::uint64_t version = storage_.write_mark(user);
  auto found = analytics_cache_->lookup(key, version);
  if (found.value) {
    analytics_cache_->record(cache::CacheOutcome::CloudHit);
    return HttpResponse::json(found.value->body, found.value->status);
  }
  analytics_cache_->record(found.stale ? cache::CacheOutcome::Recompute
                                       : cache::CacheOutcome::Miss);
  HttpResponse response = compute();
  analytics_cache_->put(key, {response.status, response.body}, version);
  return response;
}

std::optional<HttpResponse> CloudInstance::require_user(
    const HttpRequest& request, const PathParams& params,
    world::DeviceId& user_out) const {
  const auto user = authed_user(request);
  if (!user)
    return HttpResponse::error(net::kStatusUnauthorized, "invalid token");
  const auto it = params.find("id");
  if (it != params.end() &&
      static_cast<world::DeviceId>(std::atoll(it->second.c_str())) != *user)
    return HttpResponse::error(net::kStatusUnauthorized,
                               "token does not match user");
  user_out = *user;
  return std::nullopt;
}

std::optional<HttpResponse> CloudInstance::require_writable(
    const HttpRequest& request, world::DeviceId user) const {
  if (storage_.write_allowed(user, request_session(request)))
    return std::nullopt;
  telemetry::registry()
      .counter("cloud_tombstone_rejections_total", {},
               "writes refused because their session was at or below the "
               "device's wipe tombstone")
      .inc();
  return HttpResponse::error(net::kStatusGone,
                             "user wiped; re-register before writing");
}

void CloudInstance::register_routes() {
  using net::Method;

  // --- Observability: the telemetry registry, for scraping (§ telemetry) ---
  // Authenticated like every data endpoint (metrics leak usage patterns),
  // but not user-scoped: any registered device may scrape. Default rendering
  // is Prometheus exposition text carried in the JSON envelope's "text"
  // field; ?format=json returns the structured export instead.
  router_.add_route(Method::Get, "/metrics",
                    [this](const HttpRequest& req, const PathParams&) {
    if (!authed_user(req))
      return HttpResponse::error(net::kStatusUnauthorized, "invalid token");
    telemetry::ensure_build_info(telemetry::registry());
    const auto format = req.query.find("format");
    if (format != req.query.end() && format->second == "json")
      return HttpResponse::json(telemetry::to_json(telemetry::registry()));
    Json body = Json::object();
    body.set("content_type", "text/plain; version=0.0.4");
    body.set("text", telemetry::to_prometheus(telemetry::registry()));
    return HttpResponse::json(std::move(body));
  });

  // --- Observability: sim-time series + alert state (§ telemetry) ---
  // Same auth posture as /metrics. /timeseries serves the recorder ring
  // (per-sim-interval counter deltas and gauge values); /alertz serves the
  // live rule table of the SLO alert engine.
  router_.add_route(Method::Get, "/timeseries",
                    [this](const HttpRequest& req, const PathParams&) {
    if (!authed_user(req))
      return HttpResponse::error(net::kStatusUnauthorized, "invalid token");
    return HttpResponse::json(telemetry::timeseries().to_json());
  });

  router_.add_route(Method::Get, "/alertz",
                    [this](const HttpRequest& req, const PathParams&) {
    if (!authed_user(req))
      return HttpResponse::error(net::kStatusUnauthorized, "invalid token");
    return HttpResponse::json(telemetry::alerts().to_json());
  });

  // --- Diagnostics: liveness + storage/error overview (§ tracing) ---
  // Authenticated like /metrics: uptime and per-route error counts profile
  // the deployment, so they are not anonymous surface.
  router_.add_route(Method::Get, "/healthz",
                    [this](const HttpRequest& req, const PathParams&) {
    if (!authed_user(req))
      return HttpResponse::error(net::kStatusUnauthorized, "invalid token");
    Json body = Json::object();
    body.set("status", "ok");
    body.set("uptime_wall_s",
             std::chrono::duration_cast<std::chrono::duration<double>>(
                 std::chrono::steady_clock::now() - started_)
                 .count());
    body.set("sim_time", request_time(req));
    body.set("routes", static_cast<std::uint64_t>(router_.route_count()));

    const CloudStorage::Stats stats = storage_.stats();
    Json storage = Json::object();
    storage.set("shards", static_cast<std::uint64_t>(storage_.shard_count()));
    storage.set("users", static_cast<std::uint64_t>(stats.users));
    storage.set("places", static_cast<std::uint64_t>(stats.places));
    storage.set("profiles", static_cast<std::uint64_t>(stats.profiles));
    storage.set("routes", static_cast<std::uint64_t>(stats.routes));
    storage.set("encounters", static_cast<std::uint64_t>(stats.encounters));
    body.set("storage", std::move(storage));

    // Per-route error totals: every cloud_requests_total series whose
    // status label is 4xx/5xx, folded by route. Read under the registry
    // lock; with_families is non-reentrant so only aggregation happens
    // inside.
    Json errors = Json::object();
    telemetry::registry().with_families(
        [&errors](const std::map<std::string, telemetry::MetricFamily>&
                      families) {
          const auto it = families.find("cloud_requests_total");
          if (it == families.end()) return;
          std::map<std::string, std::uint64_t> by_route;
          for (const auto& [labels, series] : it->second.counters) {
            const auto status = labels.find("status");
            const auto route = labels.find("route");
            if (status == labels.end() || route == labels.end()) continue;
            if (std::atoi(status->second.c_str()) < 400) continue;
            by_route[route->second] += series->value();
          }
          for (const auto& [route, count] : by_route)
            errors.set(route, count);
        });
    body.set("errors_by_route", std::move(errors));

    Json tracing = Json::object();
    tracing.set("spans",
                static_cast<std::uint64_t>(telemetry::tracer().snapshot().size()));
    tracing.set("dropped",
                static_cast<std::uint64_t>(telemetry::tracer().dropped()));
    body.set("tracing", std::move(tracing));

    Json logs = Json::object();
    logs.set("total", static_cast<std::uint64_t>(telemetry::logger().total()));
    logs.set("retained",
             static_cast<std::uint64_t>(telemetry::logger().recent().size()));
    body.set("logs", std::move(logs));
    return HttpResponse::json(std::move(body));
  });

  // --- Diagnostics: slowest traces + SLO counters (§ tracing) ---
  router_.add_route(Method::Get, "/tracez",
                    [this](const HttpRequest& req, const PathParams&) {
    if (!authed_user(req))
      return HttpResponse::error(net::kStatusUnauthorized, "invalid token");
    std::size_t n = 5;
    if (const auto it = req.query.find("n"); it != req.query.end()) {
      const long long parsed = std::atoll(it->second.c_str());
      if (parsed > 0) n = static_cast<std::size_t>(parsed);
    }
    Json body = Json::object();
    body.set("slo_threshold_us", config_.slo_wall_us);
    Json violations = Json::object();
    telemetry::registry().with_families(
        [&violations](const std::map<std::string, telemetry::MetricFamily>&
                          families) {
          const auto it = families.find("cloud_slo_violations_total");
          if (it == families.end()) return;
          for (const auto& [labels, series] : it->second.counters) {
            const auto route = labels.find("route");
            if (route == labels.end()) continue;
            violations.set(route->second, series->value());
          }
        });
    body.set("slo_violations_by_route", std::move(violations));
    body.set("slowest_traces", telemetry::slowest_traces_json(
                                   telemetry::tracer().snapshot(), n));
    return HttpResponse::json(std::move(body));
  });

  // --- Registration API ---
  router_.add_route(Method::Post, "/api/register",
                    [this](const HttpRequest& req, const PathParams&) {
    const std::string imei = req.body.get_string("imei", "");
    const std::string email = req.body.get_string("email", "");
    if (imei.empty() || email.empty())
      return HttpResponse::error(net::kStatusBadRequest,
                                 "imei and email required");
    const TokenGrant grant =
        tokens_.register_device(imei, email, request_time(req));
    Json body = Json::object();
    body.set("user", static_cast<std::uint64_t>(grant.user));
    body.set("token", grant.token);
    body.set("expires_at", grant.expires_at);
    // Boot epoch: bumps on every registration of this device. The client
    // stamps it on mutating requests (X-PMWare-Session) and qualifies its
    // replay sequence numbers with it — see DESIGN.md "Failure model &
    // recovery".
    body.set("session", grant.session);
    return HttpResponse::json(std::move(body), net::kStatusCreated);
  });

  router_.add_route(Method::Post, "/api/token/refresh",
                    [this](const HttpRequest& req, const PathParams&) {
    const auto it = req.headers.find("Authorization");
    if (it == req.headers.end() || it->second.rfind("Bearer ", 0) != 0)
      return HttpResponse::error(net::kStatusUnauthorized, "no token");
    const auto grant = tokens_.refresh(it->second.substr(7), request_time(req));
    if (!grant)
      return HttpResponse::error(net::kStatusUnauthorized, "token expired");
    Json body = Json::object();
    body.set("user", static_cast<std::uint64_t>(grant->user));
    body.set("token", grant->token);
    body.set("expires_at", grant->expires_at);
    return HttpResponse::json(std::move(body));
  });

  // --- Places API: GCA offloading (§2.3.1) ---
  router_.add_route(Method::Post, "/api/places/discover",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    if (auto err = require_writable(req, user)) return *err;
    std::vector<algorithms::CellObservation> observations;
    for (const auto& o : req.body.at("observations").as_array()) {
      observations.push_back(
          {o.at("t").as_int(), core::cell_from_json(o.at("cell"))});
    }
    Json body;
    {
      const auto locked = storage_.locked_user(user);
      // Suffix-upload protocol: the device's GSM log is append-only and the
      // cloud retains the stream it has already been fed, so a request may
      // carry only the new observations plus a claim about the prefix
      // (length + rolling movement digest). A claim that matches neither
      // the retained stream nor a replay of the last applied suffix means
      // the two sides disagree about history — 409 tells the device to
      // fall back to a full upload this pass.
      if (req.body.contains("prefix_len")) {
        const auto prefix_len =
            static_cast<std::size_t>(req.body.at("prefix_len").as_int());
        const std::uint64_t prefix_digest = std::strtoull(
            req.body.at("prefix_digest").as_string().c_str(), nullptr, 16);
        if (prefix_len == locked->gca_log.size() &&
            prefix_digest == locked->gca_log_digest) {
          locked->gca_log.insert(locked->gca_log.end(), observations.begin(),
                                 observations.end());
          for (const auto& obs : observations) {
            cache::fold(locked->gca_log_digest,
                        static_cast<std::uint64_t>(obs.t));
            cache::fold(locked->gca_log_digest, obs.cell.key());
          }
        } else {
          // Replay (client retry after a lost response): the claimed prefix
          // plus this suffix IS the retained stream — nothing to apply.
          std::uint64_t replay_digest = prefix_digest;
          for (const auto& obs : observations) {
            cache::fold(replay_digest, static_cast<std::uint64_t>(obs.t));
            cache::fold(replay_digest, obs.cell.key());
          }
          const bool replay =
              prefix_len + observations.size() == locked->gca_log.size() &&
              replay_digest == locked->gca_log_digest;
          if (!replay)
            return HttpResponse::error(409, "gca log out of sync; resync");
        }
      } else {
        // Full upload: authoritative replacement of the retained stream.
        // GcaState::run detects a rewritten prefix itself and rebuilds.
        locked->gca_log = std::move(observations);
        locked->gca_log_digest = core::movement_digest(locked->gca_log);
      }
      // Content-addressed elision: the digest of the movement graph is
      // derived HERE from the retained stream, never sent as a cache key on
      // the wire. The stream is append-only, so an equal digest means an
      // identical graph and the remembered response (byte-identical by
      // construction) short-circuits the clustering.
      const std::uint64_t digest = locked->gca_log_digest;
      if (config_.cache && locked->gca_response_digest == digest) {
        cache::record_outcome(kGcaCacheName, cache::CacheOutcome::CloudHit);
        return HttpResponse::json(locked->gca_response);
      }
      const bool had_cached = locked->gca_response_digest.has_value();
      const algorithms::GcaResult result = locked->gca.run(locked->gca_log);
      Json places = Json::array();
      for (const auto& cluster : result.places) {
        Json p = Json::object();
        p.set("signature",
              core::to_json(algorithms::PlaceSignature(cluster.signature)));
        p.set("total_dwell", static_cast<std::int64_t>(cluster.total_dwell));
        places.push_back(std::move(p));
      }
      Json visits = Json::array();
      for (const auto& v : result.visits) {
        Json e = Json::object();
        e.set("place", static_cast<std::uint64_t>(v.place_index));
        e.set("arrival", v.window.begin);
        e.set("departure", v.window.end);
        visits.push_back(std::move(e));
      }
      body = Json::object();
      body.set("places", std::move(places));
      body.set("visits", std::move(visits));
      if (config_.cache) {
        cache::record_outcome(kGcaCacheName,
                              had_cached ? cache::CacheOutcome::Recompute
                                         : cache::CacheOutcome::Miss);
        locked->gca_response_digest = digest;
        locked->gca_response = body;
      }
    }
    return HttpResponse::json(std::move(body));
  });

  // --- Places API: sync and retrieval ---
  router_.add_route(Method::Get, "/api/users/:id/places",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    Json arr = Json::array();
    {
      const auto locked = storage_.locked_user(user);
      for (const auto& [uid, record] : locked->places)
        arr.push_back(core::to_json(record));
    }
    Json body = Json::object();
    body.set("places", std::move(arr));
    return conditional(req, HttpResponse::json(std::move(body)));
  });

  router_.add_route(Method::Put, "/api/users/:id/places/:uid",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    if (auto err = require_writable(req, user)) return *err;
    core::PlaceRecord record = core::place_record_from_json(req.body);
    record.uid = static_cast<core::PlaceUid>(
        std::atoll(params.at("uid").c_str()));
    // Resolve an approximate position server-side when the client has none.
    if (!record.location)
      record.location = geoloc_.locate_signature(record.signature);
    storage_.locked_user(user)->places[record.uid] = record;
    storage_.note_write(user);
    Json body = Json::object();
    body.set("uid", static_cast<std::uint64_t>(record.uid));
    // Echo the resolved position so the mobile service can cache it locally
    // (geofencing and the map UI need coordinates on-device).
    if (record.location) body.set("location", core::to_json(*record.location));
    return HttpResponse::json(std::move(body), net::kStatusCreated);
  });

  router_.add_route(Method::Post, "/api/users/:id/places/:uid/label",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    if (auto err = require_writable(req, user)) return *err;
    const auto uid = static_cast<core::PlaceUid>(
        std::atoll(params.at("uid").c_str()));
    {
      const auto locked = storage_.locked_user(user);
      auto& places = locked->places;
      const auto it = places.find(uid);
      if (it == places.end())
        return HttpResponse::error(net::kStatusNotFound, "unknown place");
      it->second.label = req.body.get_string("label", "");
    }
    storage_.note_write(user);
    return HttpResponse::json(Json::object());
  });

  // --- Mobility profiles API (§2.3.3) ---
  router_.add_route(Method::Put, "/api/users/:id/profiles/:day",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    if (auto err = require_writable(req, user)) return *err;
    core::MobilityProfile profile = core::profile_from_json(req.body);
    const std::int64_t day = std::atoll(params.at("day").c_str());
    profile.day = day;
    profile.user = user;
    storage_.locked_user(user)->profiles[day] = std::move(profile);
    storage_.note_write(user);
    return HttpResponse::json(Json::object(), net::kStatusCreated);
  });

  router_.add_route(Method::Get, "/api/users/:id/profiles/:day",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const std::int64_t day = std::atoll(params.at("day").c_str());
    const auto locked = storage_.locked_user(user);
    const auto& profiles = locked->profiles;
    const auto it = profiles.find(day);
    if (it == profiles.end())
      return HttpResponse::error(net::kStatusNotFound, "no profile for day");
    return conditional(req, HttpResponse::json(core::to_json(it->second)));
  });

  // --- Routes API ---
  router_.add_route(Method::Post, "/api/users/:id/routes",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    if (auto err = require_writable(req, user)) return *err;
    algorithms::RouteObservation obs;
    obs.from_place = static_cast<std::size_t>(req.body.get_int("from", 0));
    obs.to_place = static_cast<std::size_t>(req.body.get_int("to", 0));
    obs.window = TimeWindow{req.body.get_int("start", 0),
                            req.body.get_int("end", 0)};
    if (req.body.contains("cells")) {
      for (const auto& c : req.body.at("cells").as_array()) {
        obs.cells.times.push_back(c.at("t").as_int());
        obs.cells.cells.push_back(core::cell_from_json(c.at("cell")));
      }
    }
    if (req.body.contains("gps")) {
      for (const auto& g : req.body.at("gps").as_array()) {
        obs.gps.times.push_back(g.at("t").as_int());
        obs.gps.points.push_back(core::latlng_from_json(g));
      }
    }
    // Replay guard: the device stamps each upload with its route-log index.
    // A "seq" below the high-water mark was already applied — an outbox
    // replay whose original response was lost must not double-count the
    // journey in the canonical route's use_count. Requests without "seq"
    // (legacy callers, tests) always apply.
    const bool has_seq = req.body.contains("seq");
    const auto seq =
        static_cast<std::uint64_t>(req.body.get_int("seq", 0));
    std::size_t uid = 0;
    {
      const auto locked = storage_.locked_user(user);
      if (has_seq && seq < locked->route_seq_high_water) {
        // Already applied — nothing changed, so no write-mark bump either.
        Json body = Json::object();
        body.set("duplicate", true);
        return HttpResponse::json(std::move(body));
      }
      uid = locked->routes.add(std::move(obs));
      if (has_seq)
        locked->route_seq_high_water = seq + 1;
    }
    storage_.note_write(user);
    Json body = Json::object();
    body.set("route_uid", static_cast<std::uint64_t>(uid));
    return HttpResponse::json(std::move(body), net::kStatusCreated);
  });

  router_.add_route(Method::Get, "/api/users/:id/routes",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const auto locked = storage_.locked_user(user);
    const auto& store = locked->routes;
    Json arr = Json::array();
    auto emit = [&arr](std::size_t uid, const algorithms::CanonicalRoute& r) {
      Json e = Json::object();
      e.set("route_uid", static_cast<std::uint64_t>(uid));
      e.set("from", static_cast<std::uint64_t>(r.representative.from_place));
      e.set("to", static_cast<std::uint64_t>(r.representative.to_place));
      e.set("use_count", static_cast<std::uint64_t>(r.use_count));
      arr.push_back(std::move(e));
    };
    const auto from_it = req.query.find("from");
    const auto to_it = req.query.find("to");
    if (from_it != req.query.end() && to_it != req.query.end()) {
      for (std::size_t uid : store.between(
               static_cast<std::size_t>(std::atoll(from_it->second.c_str())),
               static_cast<std::size_t>(std::atoll(to_it->second.c_str()))))
        emit(uid, store.routes()[uid]);
    } else {
      for (std::size_t uid = 0; uid < store.routes().size(); ++uid)
        emit(uid, store.routes()[uid]);
    }
    Json body = Json::object();
    body.set("routes", std::move(arr));
    return conditional(req, HttpResponse::json(std::move(body)));
  });

  // --- Social contacts API ---
  router_.add_route(Method::Post, "/api/users/:id/contacts",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    if (auto err = require_writable(req, user)) return *err;
    const auto locked = storage_.locked_user(user);
    // Replay guard mirroring the routes "seq": the batch declares the
    // device-side log index of its first entry, and entries below the
    // high-water mark were already applied by an earlier attempt.
    const auto& batch = req.body.at("encounters").as_array();
    std::size_t skip = 0;
    if (req.body.contains("first_index")) {
      const auto first =
          static_cast<std::uint64_t>(req.body.get_int("first_index", 0));
      if (first < locked->encounter_high_water)
        skip = static_cast<std::size_t>(
            std::min<std::uint64_t>(locked->encounter_high_water - first,
                                    batch.size()));
      locked->encounter_high_water =
          std::max(locked->encounter_high_water, first + batch.size());
    }
    for (std::size_t i = skip; i < batch.size(); ++i) {
      const auto& e = batch[i];
      locked->encounters.push_back(
          {static_cast<world::DeviceId>(e.at("contact").as_int()),
           static_cast<core::PlaceUid>(e.at("place").as_int()),
           e.at("start").as_int(), e.at("end").as_int()});
    }
    // Bumped while still holding the shard lock: a reader that samples the
    // new mark can only read state after this lock is released.
    storage_.note_write(user);
    return HttpResponse::json(Json::object(), net::kStatusCreated);
  });

  router_.add_route(Method::Get, "/api/users/:id/contacts",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    std::optional<core::PlaceUid> place_filter;
    if (const auto it = req.query.find("place"); it != req.query.end())
      place_filter = static_cast<core::PlaceUid>(std::atoll(it->second.c_str()));
    Json arr = Json::array();
    const auto locked = storage_.locked_user(user);
    for (const auto& e : locked->encounters) {
      if (place_filter && e.place != *place_filter) continue;
      Json o = Json::object();
      o.set("contact", static_cast<std::uint64_t>(e.contact));
      o.set("place", static_cast<std::uint64_t>(e.place));
      o.set("start", e.start);
      o.set("end", e.end);
      arr.push_back(std::move(o));
    }
    Json body = Json::object();
    body.set("encounters", std::move(arr));
    return HttpResponse::json(std::move(body));
  });

  // --- Privacy: data deletion (paper §6 "greater privacy and security
  // guarantees") ---
  router_.add_route(Method::Delete, "/api/users/:id",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    // The GCA state lives in the user's store, so one erase drops
    // everything — data and clustering state alike. A session-stamped wipe
    // also leaves a tombstone at that session, permanently fencing out any
    // still-queued writes from the wiped incarnation (sessionless wipes —
    // tests, legacy callers — erase without fencing).
    storage_.erase_user(user, request_session(req));
    return HttpResponse::json(Json::object());
  });

  router_.add_route(Method::Delete, "/api/users/:id/places/:uid",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    // Gated too: after a wipe + re-registration, place uids can be reused,
    // so a replayed delete from the wiped incarnation could hit new data.
    if (auto err = require_writable(req, user)) return *err;
    const auto uid = static_cast<core::PlaceUid>(
        std::atoll(params.at("uid").c_str()));
    if (!storage_.erase_place(user, uid))
      return HttpResponse::error(net::kStatusNotFound, "unknown place");
    return HttpResponse::json(Json::object());
  });

  // --- Activity tracking (paper §6 future work) ---
  router_.add_route(Method::Get, "/api/users/:id/analytics/activity/:day",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const std::int64_t day = std::atoll(params.at("day").c_str());
    return analytics_cached(req, user, /*time_sensitive=*/false, [&] {
      const auto locked = storage_.locked_user(user);
      const auto& profiles = locked->profiles;
      const auto it = profiles.find(day);
      if (it == profiles.end() || it->second.activity.empty())
        return HttpResponse::error(net::kStatusNotFound, "no activity for day");
      Json body = Json::object();
      body.set("still", it->second.activity.still);
      body.set("walking", it->second.activity.walking);
      body.set("vehicle", it->second.activity.vehicle);
      return HttpResponse::json(std::move(body));
    });
  });

  // --- Geo-location API (§2.3.3 "miscellaneous services") ---
  router_.add_route(Method::Get, "/api/geo/cell/:mcc/:mnc/:lac/:cid",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    world::CellId cell;
    cell.mcc = static_cast<std::uint16_t>(std::atoi(params.at("mcc").c_str()));
    cell.mnc = static_cast<std::uint16_t>(std::atoi(params.at("mnc").c_str()));
    cell.lac = static_cast<std::uint16_t>(std::atoi(params.at("lac").c_str()));
    cell.cid = static_cast<std::uint32_t>(std::atoll(params.at("cid").c_str()));
    const auto radio_it = req.query.find("radio");
    cell.radio = (radio_it != req.query.end() && radio_it->second == "3g")
                     ? world::Radio::Umts3G
                     : world::Radio::Gsm2G;
    const auto pos = geoloc_.locate_cell(cell);
    if (!pos) return HttpResponse::error(net::kStatusNotFound, "unknown cell");
    return HttpResponse::json(core::to_json(*pos));
  });

  // --- Analytics & prediction engine (§2.3.2) ---
  router_.add_route(Method::Get, "/api/users/:id/analytics/arrival/:uid",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const auto uid = static_cast<core::PlaceUid>(
        std::atoll(params.at("uid").c_str()));
    return analytics_cached(req, user, /*time_sensitive=*/false, [&] {
      const auto tod = analytics_.typical_arrival_tod(user, uid);
      if (!tod) return HttpResponse::error(net::kStatusNotFound, "no history");
      Json body = Json::object();
      body.set("typical_arrival_tod", *tod);
      return HttpResponse::json(std::move(body));
    });
  });

  router_.add_route(Method::Get, "/api/users/:id/analytics/next_visit/:uid",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const auto uid = static_cast<core::PlaceUid>(
        std::atoll(params.at("uid").c_str()));
    // Time-sensitive: the prediction depends on the request's sim-time, so
    // the cache key carries it (same instant + unchanged shard = same
    // answer; a new instant is a new entry).
    return analytics_cached(req, user, /*time_sensitive=*/true, [&] {
      const auto t =
          analytics_.predict_next_visit(user, uid, request_time(req));
      if (!t) return HttpResponse::error(net::kStatusNotFound, "no prediction");
      Json body = Json::object();
      body.set("predicted_at", *t);
      return HttpResponse::json(std::move(body));
    });
  });

  router_.add_route(Method::Get, "/api/users/:id/analytics/departure/:uid",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const auto uid = static_cast<core::PlaceUid>(
        std::atoll(params.at("uid").c_str()));
    return analytics_cached(req, user, /*time_sensitive=*/false, [&] {
      const auto tod = analytics_.typical_departure_tod(user, uid);
      if (!tod) return HttpResponse::error(net::kStatusNotFound, "no history");
      Json body = Json::object();
      body.set("typical_departure_tod", *tod);
      return HttpResponse::json(std::move(body));
    });
  });

  router_.add_route(Method::Get, "/api/users/:id/analytics/next_place/:uid",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const auto uid = static_cast<core::PlaceUid>(
        std::atoll(params.at("uid").c_str()));
    return analytics_cached(req, user, /*time_sensitive=*/false, [&] {
      const auto next = analytics_.predict_next_place(user, uid);
      if (!next) return HttpResponse::error(net::kStatusNotFound, "no history");
      Json body = Json::object();
      body.set("place", static_cast<std::uint64_t>(next->place));
      body.set("probability", next->probability);
      return HttpResponse::json(std::move(body));
    });
  });

  router_.add_route(Method::Get, "/api/users/:id/analytics/frequency",
                    [this](const HttpRequest& req, const PathParams& params) {
    world::DeviceId user = 0;
    if (auto err = require_user(req, params, user)) return *err;
    const auto it = req.query.find("label");
    return analytics_cached(req, user, /*time_sensitive=*/false, [&] {
      std::vector<core::PlaceUid> matching;
      {
        // Collect the matching uids and RELEASE the shard lock before
        // asking the analytics engine: it re-enters the storage (visits_at)
        // and the shard mutex is non-recursive.
        const auto locked = storage_.locked_user(user);
        for (const auto& [uid, record] : locked->places) {
          if (it == req.query.end() || record.label == it->second)
            matching.push_back(uid);
        }
      }
      Json body = Json::object();
      body.set("visits_per_week",
               analytics_.visit_frequency_per_week(user, matching));
      return HttpResponse::json(std::move(body));
    });
  });
}

}  // namespace pmware::cloud
