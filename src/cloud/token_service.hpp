// Registration and authentication (paper §2.2.1/§2.3.3): a device is
// identified by IMEI + account email; a one-time registration yields a
// bearer token which expires and is refreshed periodically.
//
// Thread-safe, and sharded so the request path has no cross-user choke
// point left: the token table is split into kTokenShards buckets by token
// hash, each behind its own mutex, so validate() — run by every
// authenticated request — only contends with requests whose tokens hash
// to the same bucket. The registration table (device→user, user-id
// assignment, the minting RNG) keeps a separate mutex; it is touched only
// by register/refresh, never by validate, and no operation ever holds
// both a token-shard lock and the registration lock at once.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "util/rng.hpp"
#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::cloud {

struct TokenGrant {
  world::DeviceId user = 0;
  std::string token;
  SimTime expires_at = 0;
  /// Registration session: how many times this device has registered, ever
  /// (1 on first registration, bumped on every re-registration). The
  /// device's boot epoch — it qualifies replay sequence numbers across
  /// crash/restart incarnations and keys wipe tombstones, and it comes from
  /// the cloud precisely so a cold-restarted device (no local state at all)
  /// still gets a strictly increasing epoch.
  std::uint64_t session = 0;
};

class TokenService {
 public:
  static constexpr std::size_t kTokenShards = 16;

  explicit TokenService(Rng rng, SimDuration token_ttl = hours(24));

  /// Registers (or re-registers) a device; idempotent on (imei, email) —
  /// the same device always maps to the same user id, with a fresh token.
  /// Every call bumps the device's registration session (TokenGrant::
  /// session), the monotone boot epoch crash recovery and wipe tombstones
  /// key on.
  TokenGrant register_device(const std::string& imei, const std::string& email,
                             SimTime now);

  /// Exchanges a valid (possibly near-expiry) token for a fresh one.
  /// Expired or unknown tokens are refused.
  std::optional<TokenGrant> refresh(const std::string& token, SimTime now);

  /// Validates a bearer token; returns the user id if current. Takes only
  /// the owning token shard's lock — the per-request hot path.
  std::optional<world::DeviceId> validate(const std::string& token,
                                          SimTime now) const;

  SimDuration token_ttl() const { return ttl_; }
  std::size_t registered_devices() const {
    const std::scoped_lock lock(reg_mu_);
    return devices_.size();
  }
  /// Live tokens across all shards (tests/diagnostics).
  std::size_t token_count() const;

 private:
  struct TokenInfo {
    world::DeviceId user;
    SimTime expires_at;
  };
  struct TokenShard {
    mutable std::mutex mu;
    std::map<std::string, TokenInfo> tokens;
  };

  /// Owning shard of a token string (FNV-1a, platform-independent).
  TokenShard& shard_of(const std::string& token) const;

  /// Caller must hold reg_mu_ (mint draws from the shared RNG).
  std::string mint_token();

  struct DeviceInfo {
    world::DeviceId user = 0;
    std::uint64_t sessions = 0;  ///< registrations so far (TokenGrant::session)
  };

  /// Guards devices_, next_user_, and rng_ — registration-path state only.
  mutable std::mutex reg_mu_;
  Rng rng_;
  SimDuration ttl_;
  std::map<std::pair<std::string, std::string>, DeviceInfo> devices_;
  world::DeviceId next_user_ = 1;

  mutable std::array<TokenShard, kTokenShards> token_shards_;
};

}  // namespace pmware::cloud
