// Registration and authentication (paper §2.2.1/§2.3.3): a device is
// identified by IMEI + account email; a one-time registration yields a
// bearer token which expires and is refreshed periodically.
//
// Thread-safe: with the cloud's dispatch sharded per user, registration
// and token validation are the one cross-user choke point left on the
// request path, so the service serializes itself with an internal mutex
// (the critical section is a couple of map lookups — orders of magnitude
// shorter than a handler).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "util/rng.hpp"
#include "util/simtime.hpp"
#include "world/ids.hpp"

namespace pmware::cloud {

struct TokenGrant {
  world::DeviceId user = 0;
  std::string token;
  SimTime expires_at = 0;
};

class TokenService {
 public:
  explicit TokenService(Rng rng, SimDuration token_ttl = hours(24));

  /// Registers (or re-registers) a device; idempotent on (imei, email) —
  /// the same device always maps to the same user id, with a fresh token.
  TokenGrant register_device(const std::string& imei, const std::string& email,
                             SimTime now);

  /// Exchanges a valid (possibly near-expiry) token for a fresh one.
  /// Expired or unknown tokens are refused.
  std::optional<TokenGrant> refresh(const std::string& token, SimTime now);

  /// Validates a bearer token; returns the user id if current.
  std::optional<world::DeviceId> validate(const std::string& token,
                                          SimTime now) const;

  SimDuration token_ttl() const { return ttl_; }
  std::size_t registered_devices() const {
    const std::scoped_lock lock(mu_);
    return devices_.size();
  }

 private:
  /// Caller must hold mu_ (mint draws from the shared RNG).
  std::string mint_token();

  mutable std::mutex mu_;
  Rng rng_;
  SimDuration ttl_;
  std::map<std::pair<std::string, std::string>, world::DeviceId> devices_;
  struct TokenInfo {
    world::DeviceId user;
    SimTime expires_at;
  };
  std::map<std::string, TokenInfo> tokens_;
  world::DeviceId next_user_ = 1;
};

}  // namespace pmware::cloud
