// Cloud-side persistent stores: per-user places, day-keyed mobility
// profiles, canonical routes, and social contacts (paper §2.3).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "algorithms/routes.hpp"
#include "core/model.hpp"

namespace pmware::cloud {

struct UserStore {
  std::map<core::PlaceUid, core::PlaceRecord> places;
  std::map<std::int64_t, core::MobilityProfile> profiles;  ///< by day
  algorithms::RouteStore routes;
  std::vector<core::EncounterEntry> encounters;
};

class CloudStorage {
 public:
  UserStore& user(world::DeviceId id) { return users_[id]; }
  const UserStore* find_user(world::DeviceId id) const {
    const auto it = users_.find(id);
    return it == users_.end() ? nullptr : &it->second;
  }
  std::size_t user_count() const { return users_.size(); }

  /// Aggregate record counts across users — the storage block of /healthz.
  struct Stats {
    std::size_t users = 0;
    std::size_t places = 0;
    std::size_t profiles = 0;
    std::size_t routes = 0;
    std::size_t encounters = 0;
  };
  Stats stats() const {
    Stats s;
    s.users = users_.size();
    for (const auto& [id, store] : users_) {
      s.places += store.places.size();
      s.profiles += store.profiles.size();
      s.routes += store.routes.routes().size();
      s.encounters += store.encounters.size();
    }
    return s;
  }

  /// Deletes everything stored for `id` (privacy wipe, paper §6 future
  /// work). Returns true if the user had any data.
  bool erase_user(world::DeviceId id) { return users_.erase(id) > 0; }

  /// Deletes one place and every profile entry referencing it. Returns true
  /// if the place existed.
  bool erase_place(world::DeviceId id, core::PlaceUid place);

  /// All visits of `user` at `place` across all stored profiles, in day
  /// order — the analytics engine's raw material.
  std::vector<core::PlaceVisitEntry> visits_at(world::DeviceId user,
                                               core::PlaceUid place) const;

  /// Like visits_at, but with cross-midnight continuations stitched back
  /// together: day profiles split an overnight stay into an evening entry
  /// ending at midnight and a morning entry starting at midnight (paper
  /// §2.1.3 stores day-specific profiles); for arrival/departure analytics
  /// those two entries are one stay.
  std::vector<core::PlaceVisitEntry> stitched_visits_at(
      world::DeviceId user, core::PlaceUid place) const;

 private:
  std::map<world::DeviceId, UserStore> users_;
};

}  // namespace pmware::cloud
