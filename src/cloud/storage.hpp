// Cloud-side persistent stores: per-user places, day-keyed mobility
// profiles, canonical routes, social contacts, and incremental GCA state
// (paper §2.3) — sharded by user so concurrent requests for different
// users never contend on one lock.
//
// Concurrency model (DESIGN.md "Concurrency model"):
//  * The user space is split into N shards by `shard_of(id)`; each shard
//    owns its user map plus its own mutex. A per-user operation takes
//    exactly one shard lock (locked_user / with_user / erase_user / ...).
//  * Cross-user operations (stats, content_digest, copies) take the
//    all-shards snapshot path: every shard lock in ascending shard order,
//    released together. Lock ordering rule: never take a second shard lock
//    while holding one — per-user ops hold one, snapshot ops take all
//    ascending, so the orders can never invert.
//  * The bare user()/find_user() accessors are unsynchronized conveniences
//    for single-threaded callers (tests, examples, post-join reads); the
//    request path goes through the locking accessors only.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "algorithms/gca.hpp"
#include "algorithms/routes.hpp"
#include "cache/digest.hpp"
#include "core/model.hpp"
#include "util/json.hpp"

namespace pmware::cloud {

struct UserStore {
  std::map<core::PlaceUid, core::PlaceRecord> places;
  std::map<std::int64_t, core::MobilityProfile> profiles;  ///< by day
  algorithms::RouteStore routes;
  std::vector<core::EncounterEntry> encounters;
  /// Incremental clustering state for POST /api/places/discover: the device
  /// uploads its append-only GSM log each pass, so the suffix feed applies
  /// server-side too. Lives with the user's data so one shard lock covers a
  /// discover request and account deletion drops it with everything else.
  algorithms::GcaState gca;
  /// Idempotent-replay high-water marks for the append-only uploads: the
  /// device stamps each route POST with its log index ("seq") and each
  /// encounter batch with its starting index ("first_index"); entries below
  /// the mark were already applied and are skipped on replay. Bookkeeping,
  /// not content — excluded from content_digest() like the GCA cache.
  std::uint64_t route_seq_high_water = 0;
  std::uint64_t encounter_high_water = 0;
  /// Offload response cache for POST /api/places/discover: the serialized
  /// response body last computed, versioned by the movement-graph digest
  /// of the request that produced it (core::movement_digest). The upload
  /// is append-only, so an equal digest means an identical graph and the
  /// clustering can be skipped wholesale. Derived state like the GCA cache
  /// — excluded from content_digest().
  std::optional<std::uint64_t> gca_response_digest;
  Json gca_response;
  /// The observation stream fed to `gca` so far, retained server-side so
  /// the device can upload only the suffix each pass (POST
  /// /api/places/discover with prefix_len/prefix_digest): a mapping-change
  /// recluster must replay the whole stream, so the cloud keeps it instead
  /// of receiving it again every day. `gca_log_digest` is the rolling
  /// core::movement_digest of the stream — what a full upload's digest
  /// would be — and verifies the device's prefix claim. Bookkeeping, not
  /// content: excluded from content_digest() like the rest of the GCA
  /// state, and dropped with the user on archive/erase.
  std::vector<algorithms::CellObservation> gca_log;
  std::uint64_t gca_log_digest = cache::kDigestBasis;
};

class CloudStorage {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit CloudStorage(std::size_t shards = kDefaultShards);

  /// Copies move the user data, not the mutexes; the destination keeps its
  /// own shard count and redistributes (tests assign prebuilt fixtures into
  /// live instances).
  CloudStorage(const CloudStorage& other);
  CloudStorage& operator=(const CloudStorage& other);

  std::size_t shard_count() const { return shards_.size(); }

  /// Owning shard of `id`: mix(id) % shard_count. The mix is a fixed
  /// splitmix64 finalizer so the distribution (and therefore every sharded
  /// run) is identical across platforms and standard libraries.
  std::size_t shard_of(world::DeviceId id) const;

  /// RAII view of one user's store holding the owning shard's lock; the
  /// request path's only write door.
  class UserLock {
   public:
    UserStore& operator*() const { return *store_; }
    UserStore* operator->() const { return store_; }

   private:
    friend class CloudStorage;
    UserLock(std::unique_lock<std::mutex> lock, UserStore* store)
        : lock_(std::move(lock)), store_(store) {}
    std::unique_lock<std::mutex> lock_;
    UserStore* store_;
  };

  /// Locks the owning shard and returns the user's store, creating it on
  /// first use (mirrors the historical user() semantics).
  UserLock locked_user(world::DeviceId id);

  /// Runs `fn(store)` under the owning shard's lock; `store` is null when
  /// the user has no data. `fn` must not touch the storage again (the shard
  /// mutex is non-recursive) and must not block.
  template <typename Fn>
  auto with_user(world::DeviceId id, Fn&& fn) const {
    const std::size_t s = shard_of(id);
    const auto lock = lock_shard(s);
    const auto& users = shards_[s].users;
    const auto it = users.find(id);
    return fn(it == users.end() ? nullptr : &it->second);
  }

  /// Unsynchronized accessors for single-threaded callers (tests, examples,
  /// analytics fixtures). Never used on the concurrent request path.
  UserStore& user(world::DeviceId id) {
    // Possibly mutating (tests build fixtures through it), so count it
    // toward the shard's write mark — a stale analytics cache entry is
    // worse than a spurious invalidation.
    note_write(id);
    return shards_[shard_of(id)].users[id];
  }
  const UserStore* find_user(world::DeviceId id) const {
    const auto& users = shards_[shard_of(id)].users;
    const auto it = users.find(id);
    return it == users.end() ? nullptr : &it->second;
  }

  std::size_t user_count() const;

  /// Aggregate record counts across users — the storage block of /healthz.
  struct Stats {
    std::size_t users = 0;
    std::size_t places = 0;
    std::size_t profiles = 0;
    std::size_t routes = 0;
    std::size_t encounters = 0;

    bool operator==(const Stats&) const = default;
  };
  /// All-shards snapshot: a coherent aggregate even while writers run.
  Stats stats() const;

  /// Order-independent digest of every user's stored content (places,
  /// profiles, routes, encounters; the GCA cache is internal and excluded).
  /// Cloud-assigned user ids are normalized out and per-user digests
  /// combine commutatively, so the digest is invariant under shard count
  /// and registration order — the study's determinism fingerprint.
  std::uint64_t content_digest() const;

  /// Write high-water mark of the shard owning `id` — the version every
  /// cloud-side analytics cache entry for this shard's users is tagged
  /// with. Mutating REST handlers bump it AFTER their write completes
  /// (note_write), so any cache entry tagged with a mark that includes the
  /// bump was computed after the write landed; entries computed mid-write
  /// carry the pre-bump mark and miss on the next lookup.
  std::uint64_t write_mark(world::DeviceId id) const {
    return shards_[shard_of(id)].writes.load(std::memory_order_acquire);
  }
  /// Records a completed mutation of `id`'s shard. Call after the write,
  /// either still holding the shard lock (readers sampling the new mark
  /// then serialize behind the lock) or after releasing it.
  void note_write(world::DeviceId id) const {
    shards_[shard_of(id)].writes.fetch_add(1, std::memory_order_release);
  }

  /// Deletes everything stored for `id` (privacy wipe, paper §6 future
  /// work), including its GCA state. Returns true if the user had any data.
  ///
  /// `wipe_session` (when non-zero) leaves a tombstone: the registration
  /// session the wipe was issued under. Writes stamped with a session at or
  /// below the tombstone — in-flight requests and replayed outbox entries
  /// from the wiped incarnation — are refused by write_allowed(), so
  /// pre-wipe data can never be resurrected; a post-wipe re-registration
  /// gets a strictly larger session and writes normally. Tombstones survive
  /// the erase itself (they live beside the user map, not in it) and are
  /// bookkeeping: excluded from content_digest().
  bool erase_user(world::DeviceId id, std::uint64_t wipe_session = 0);

  /// Whether a write stamped with `session` may land for `id`: true unless
  /// a wipe tombstone exists with tombstone >= session. A sessionless write
  /// (session 0) is refused after any wipe of `id`.
  bool write_allowed(world::DeviceId id, std::uint64_t session) const;

  /// The session recorded by the most recent tombstoning wipe of `id`
  /// (0 = never wiped). Tests and diagnostics.
  std::uint64_t tombstone_session(world::DeviceId id) const;

  /// Retires `id` from the live store: the user's content digest and record
  /// counts are folded into the archived accumulators, then the live entry
  /// (including GCA bookkeeping) is erased. Because per-user digests
  /// combine by commutative addition, content_digest() and stats() report
  /// the same values whether or not users were archived mid-run — this is
  /// what lets the streaming study runner hold only its active wave in
  /// memory while keeping the determinism fingerprint byte-identical to the
  /// materialize-everything runner. Returns false if the user had no data.
  bool archive_user(world::DeviceId id);

  /// Users retired via archive_user (still counted in stats().users).
  std::uint64_t archived_users() const {
    return archived_.users.load(std::memory_order_relaxed);
  }

  /// Deletes one place and every profile entry referencing it. Returns true
  /// if the place existed.
  bool erase_place(world::DeviceId id, core::PlaceUid place);

  /// All visits of `user` at `place` across all stored profiles, in day
  /// order — the analytics engine's raw material. Takes the owning shard's
  /// lock internally.
  std::vector<core::PlaceVisitEntry> visits_at(world::DeviceId user,
                                               core::PlaceUid place) const;

  /// Like visits_at, but with cross-midnight continuations stitched back
  /// together: day profiles split an overnight stay into an evening entry
  /// ending at midnight and a morning entry starting at midnight (paper
  /// §2.1.3 stores day-specific profiles); for arrival/departure analytics
  /// those two entries are one stay.
  std::vector<core::PlaceVisitEntry> stitched_visits_at(
      world::DeviceId user, core::PlaceUid place) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<world::DeviceId, UserStore> users;
    /// Wipe tombstones: device -> registration session at the wipe (see
    /// erase_user). Kept outside `users` so erasing the store does not
    /// erase the fence.
    std::map<world::DeviceId, std::uint64_t> tombstones;
    /// Monotonic completed-write counter (see write_mark); mutable so the
    /// const bookkeeping accessors work, like the mutex above.
    mutable std::atomic<std::uint64_t> writes{0};
  };

  /// Accumulators for archived (retired) users, folded into stats() and
  /// content_digest(). Atomics because different shards archive
  /// concurrently; all folds are commutative additions.
  struct Archived {
    std::atomic<std::uint64_t> users{0};
    std::atomic<std::uint64_t> places{0};
    std::atomic<std::uint64_t> profiles{0};
    std::atomic<std::uint64_t> routes{0};
    std::atomic<std::uint64_t> encounters{0};
    std::atomic<std::uint64_t> digest{0};  ///< sum of per-user digests

    void copy_from(const Archived& o) {
      users.store(o.users.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      places.store(o.places.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      profiles.store(o.profiles.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      routes.store(o.routes.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
      encounters.store(o.encounters.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      digest.store(o.digest.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
  };

  /// Locks one shard, recording the per-shard request counter and the
  /// lock-wait histogram (contention visibility for the shard sweep).
  std::unique_lock<std::mutex> lock_shard(std::size_t s) const;

  /// Every shard lock, ascending — the cross-shard snapshot path.
  std::vector<std::unique_lock<std::mutex>> lock_all() const;

  std::vector<Shard> shards_;
  Archived archived_;
};

}  // namespace pmware::cloud
