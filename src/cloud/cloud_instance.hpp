// The PMWare Cloud Instance (PCI, paper §2.3): REST endpoints for
// registration, place/route discovery offloading, mobility-profile sync,
// social contacts, geo-location, and analytics.
//
// Requests carry the simulation clock in an "X-Sim-Time" header (the
// in-process stand-in for wall-clock), and a bearer token in
// "Authorization" for everything except registration.
//
// Dispatch is concurrent: the router takes no lock, per-user handlers lock
// only the owning storage shard, and cross-user routes (/healthz, /metrics,
// /tracez) read all-shards snapshots or the thread-safe telemetry registry
// (see DESIGN.md "Concurrency model").
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "cache/content_cache.hpp"
#include "cloud/analytics.hpp"
#include "cloud/geolocation.hpp"
#include "cloud/storage.hpp"
#include "cloud/token_service.hpp"
#include "net/router.hpp"
#include "util/rng.hpp"

namespace pmware::cloud {

struct CloudConfig {
  // 28h: long enough that the nightly housekeeping refresh runs
  // with >4h of validity to spare, short enough to be exercised daily.
  SimDuration token_ttl = hours(28);
  /// Per-request wall-clock SLO: handlers slower than this increment
  /// cloud_slo_violations_total{route=...}. Default 1 ms — generous for
  /// in-process handlers, so violations flag real regressions (a GCA
  /// recluster blowing up, a pathological JSON body), not noise.
  double slo_wall_us = 1000.0;
  /// Storage shard count: requests for different users contend only when
  /// their ids hash to the same shard. 1 degenerates to the old fully
  /// serialized cloud (useful as a determinism baseline).
  std::size_t shards = CloudStorage::kDefaultShards;
  /// Scripted server-side failures (outage windows, per-route error rates,
  /// added latency); empty = healthy cloud. Injected in front of auth and
  /// handlers, so a rejected request never mutates state — see
  /// net/fault.hpp and `FaultPlan::parse` for the --fault-plan grammar.
  net::FaultPlan fault_plan;
  /// Server-side result caches (DESIGN.md "Content addressing & cache
  /// coherence"): GCA offload responses keyed by movement-graph digest, and
  /// analytics responses invalidated by the owning shard's write mark.
  /// Cached responses are byte-identical to recomputed ones by design, so
  /// disabling only trades work for none. ETag stamping on cacheable GETs
  /// is always on (generation is one hash; 304s need a client that sends
  /// If-None-Match).
  bool cache = true;
};

class CloudInstance {
 public:
  CloudInstance(CloudConfig config, GeoLocationService geoloc, Rng rng);

  /// The REST surface; hand this to a net::RestClient.
  const net::Router& router() const { return router_; }

  // Direct (non-REST) access for tests and local tooling.
  CloudStorage& storage() { return storage_; }
  const CloudStorage& storage() const { return storage_; }
  TokenService& tokens() { return tokens_; }
  const AnalyticsEngine& analytics() const { return analytics_; }
  const GeoLocationService& geolocation() const { return geoloc_; }

  /// Header names of the simulated transport (canonical names live with the
  /// HTTP model in net/http.hpp; this alias keeps existing callers working).
  static constexpr const char* kSimTimeHeader = net::kSimTimeHeader;

 private:
  /// One remembered analytics response: status + body (404 "no history" is
  /// as deterministic a function of stored state as a 200).
  struct CachedResponse {
    int status = 0;
    Json body;
  };

  void register_routes();

  /// Current simulated time as reported by the caller (0 if absent).
  static SimTime request_time(const net::HttpRequest& request);

  /// Stamps a strong ETag on a successful response and collapses it to a
  /// bodyless 304 when the request's If-None-Match already names it.
  static net::HttpResponse conditional(const net::HttpRequest& request,
                                       net::HttpResponse response);

  /// Serves an analytics GET through the shard-versioned result cache:
  /// reuses the remembered response while the owning shard's write mark is
  /// unchanged, otherwise runs `compute` and remembers its result. With
  /// the cache disabled this is just `compute()`. `time_sensitive` keys
  /// the entry by request sim-time too (predictions depend on "now").
  net::HttpResponse analytics_cached(
      const net::HttpRequest& request, world::DeviceId user,
      bool time_sensitive, const std::function<net::HttpResponse()>& compute);

  /// Validates the bearer token; returns the authenticated user or nullopt.
  std::optional<world::DeviceId> authed_user(
      const net::HttpRequest& request) const;

  /// 401 unless the token is valid AND matches the :id path parameter.
  std::optional<net::HttpResponse> require_user(
      const net::HttpRequest& request, const net::PathParams& params,
      world::DeviceId& user_out) const;

  /// Wipe-tombstone gate for mutating handlers: 410 Gone when the request's
  /// X-PMWare-Session is at or below the user's wipe tombstone (a replay
  /// from a wiped incarnation — it must never resurrect pre-wipe data).
  std::optional<net::HttpResponse> require_writable(
      const net::HttpRequest& request, world::DeviceId user) const;

  CloudConfig config_;
  /// Process start, for /healthz uptime (wall clock — the one clock the
  /// simulated transport does not fake).
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  GeoLocationService geoloc_;
  TokenService tokens_;
  CloudStorage storage_;
  AnalyticsEngine analytics_;
  /// Engaged iff config_.cache; entries versioned by the owning shard's
  /// write mark at compute time.
  std::unique_ptr<cache::ContentCache<std::string, CachedResponse>>
      analytics_cache_;
  net::Router router_;
};

}  // namespace pmware::cloud
