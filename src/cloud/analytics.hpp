// Analytics & prediction engine (paper §2.3.2): answers the long-horizon
// queries the mobile service cannot — typical home-arrival time, next-visit
// prediction, and category visit frequency — from stored mobility profiles.
#pragma once

#include <optional>
#include <span>

#include "cloud/storage.hpp"
#include "util/simtime.hpp"

namespace pmware::cloud {

class AnalyticsEngine {
 public:
  /// `storage` must outlive the engine.
  explicit AnalyticsEngine(const CloudStorage* storage) : storage_(storage) {}

  /// Q1: "What is the likely time at which the user typically reaches home
  /// in the evening?" — mean arrival time-of-day over historical arrivals
  /// falling inside `window`. nullopt without data.
  std::optional<SimDuration> typical_arrival_tod(
      world::DeviceId user, core::PlaceUid place,
      DailyWindow window = DailyWindow{hours(15), hours(24)}) const;

  /// Q2: "When will be the next visit of the user for place A?" — scans
  /// forward from `now` for the next day whose day-of-week historically has
  /// a visit (probability >= `min_day_probability`), predicted at the mean
  /// arrival time-of-day for that weekday.
  std::optional<SimTime> predict_next_visit(world::DeviceId user,
                                            core::PlaceUid place, SimTime now,
                                            double min_day_probability = 0.3) const;

  /// Q3: "How frequently does the user visit shopping malls?" — visits per
  /// week across `places` (e.g. every place labelled "mall").
  double visit_frequency_per_week(world::DeviceId user,
                                  std::span<const core::PlaceUid> places) const;

  /// Typical departure time-of-day from a place (e.g. "when does she leave
  /// for work?"), over departures inside `window`. Cross-midnight stays are
  /// stitched so midnight itself never counts as a departure.
  std::optional<SimDuration> typical_departure_tod(
      world::DeviceId user, core::PlaceUid place,
      DailyWindow window = DailyWindow::all_day()) const;

  /// First-order Markov next-place prediction: given the user is at
  /// `current`, the place that most often followed it in the stored
  /// profiles, with its empirical probability. nullopt without history.
  struct NextPlace {
    core::PlaceUid place = core::kNoPlaceUid;
    double probability = 0;
  };
  std::optional<NextPlace> predict_next_place(world::DeviceId user,
                                              core::PlaceUid current) const;

 private:
  /// Number of whole days covered by the user's stored profiles (>= 1).
  std::int64_t observed_days(world::DeviceId user) const;

  const CloudStorage* storage_;
};

}  // namespace pmware::cloud
