// Geo-location service (paper §2.3.3): converts cell ids to approximate
// coordinates, standing in for OpenCellID / Google geo-location APIs, and
// resolves place signatures to map positions for visualization (Figure 5b).
#pragma once

#include <map>
#include <optional>

#include "algorithms/signature.hpp"
#include "geo/latlng.hpp"
#include "world/ids.hpp"

namespace pmware::cloud {

class GeoLocationService {
 public:
  explicit GeoLocationService(std::map<world::CellId, geo::LatLng> cell_db)
      : cell_db_(std::move(cell_db)) {}

  /// Approximate tower position for a cell, if known.
  std::optional<geo::LatLng> locate_cell(const world::CellId& cell) const;

  /// Approximate position of a place signature: centroid of its known cells,
  /// centroid of its AP positions (when an AP database is supplied), or the
  /// GPS center directly.
  std::optional<geo::LatLng> locate_signature(
      const algorithms::PlaceSignature& sig) const;

  void set_ap_db(std::map<world::Bssid, geo::LatLng> ap_db) {
    ap_db_ = std::move(ap_db);
  }

  std::size_t known_cells() const { return cell_db_.size(); }

 private:
  std::map<world::CellId, geo::LatLng> cell_db_;
  std::map<world::Bssid, geo::LatLng> ap_db_;
};

}  // namespace pmware::cloud
