#!/usr/bin/env bash
# Tier-1 verification, twice: a plain build and an address+UB-sanitized one.
# Usage: ./ci.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")"

run_suite() {
  local build_dir="$1"
  shift
  echo "=== configure + build: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ctest: ${build_dir} ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)")
}

run_suite build "$@"
run_suite build-asan -DPMWARE_SANITIZE="address;undefined" "$@"

echo "ci.sh: both suites passed"
