#!/usr/bin/env bash
# Tier-1 verification, five legs: a plain build (plus the golden study
# digest assertion and the telemetry ns/op budget gate), a
# warnings-as-errors build, an address+UB-sanitized one, a thread-sanitized
# build that runs the Sharding-labeled tests (the telemetry registry/tracer
# hammer, the sharded-cloud hammer, the router/cloud suites, and the
# parallel deployment study) together with the SchedulerPerf battery (the
# batched sensing hot loop raced across 8 workers), the Concurrency battery
# (striped counters / sharded histograms / metric handles), and the
# Alerting battery (recorder + alert engine), and a chaos leg that re-runs
# the Robustness-labeled fault/outbox/breaker tests under asan together
# with Caching, Alerting, and the Population streaming-runner battery.
# The golden-digest gate runs both study runners (materialized and
# streaming) against tests/golden/study_digest.txt, then again under the
# pinned device-chaos plan (crash/restart injection, privacy wipes, late
# joins) against tests/golden/study_digest_crash.txt.
# Usage: ./ci.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")"

run_suite() {
  local build_dir="$1"
  # Extra ctest selection args, e.g. "-L Sharding" (label) or "-R Foo"
  # (name regex); empty runs everything.
  local test_selector="$2"
  shift 2
  echo "=== configure + build: ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "$(nproc)"
  echo "=== ctest: ${build_dir} ==="
  (cd "${build_dir}" &&
   ctest --output-on-failure -j "$(nproc)" ${test_selector})
}

run_suite build "" "$@"

# Golden-digest gate: the deployment study must stay byte-identical to the
# digest captured at the pre-change baseline and committed with each
# hot-path PR (tests/golden/study_digest.txt). Catches any perf change that
# quietly reorders RNG draws or drops samples. Runs with --progress and the
# timeseries recorder + alert engine at defaults (fully on), so the gate
# also proves telemetry never perturbs the study.
echo "=== golden study digest (telemetry fully enabled) ==="
golden_digest="$(cat tests/golden/study_digest.txt)"
# Both runners must reproduce the committed digest: materialized is the
# historical reference, streaming is the bounded-memory production path.
for runner in materialized streaming; do
  actual_digest="$(./build/examples/studyctl --participants 4 --days 3 \
      --threads 2 --shards 4 --runner "${runner}" --progress 2>/dev/null |
    sed -n 's/^cloud content digest: //p')"
  if [[ "${actual_digest}" != "${golden_digest}" ]]; then
    echo "golden digest mismatch (${runner} runner): got" \
         "'${actual_digest}', expected '${golden_digest}'" >&2
    exit 1
  fi
  echo "study digest ${actual_digest} matches golden (${runner} runner)"
done

# Crashed-study golden gate: the same study under a pinned device-lifecycle
# chaos plan (mid-day crashes with checkpoint/restore recovery, end-of-day
# privacy wipes, late joins) must also stay byte-identical across runners
# and shapes — crash/restart scheduling rides the same deterministic RNG
# contract as the healthy path.
echo "=== golden study digest (device chaos plan) ==="
crash_plan="crash=0d..2d,crash_rate=0.5,restart_delay=2h;wipe=1d..2d,wipe_rate=0.5;join=0d..2d,join_rate=0.5"
crash_golden="$(cat tests/golden/study_digest_crash.txt)"
for runner in materialized streaming; do
  actual_digest="$(./build/examples/studyctl --participants 4 --days 3 \
      --threads 2 --shards 4 --runner "${runner}" \
      --fault-plan "${crash_plan}" 2>/dev/null |
    sed -n 's/^cloud content digest: //p')"
  if [[ "${actual_digest}" != "${crash_golden}" ]]; then
    echo "crashed-study digest mismatch (${runner} runner): got" \
         "'${actual_digest}', expected '${crash_golden}'" >&2
    exit 1
  fi
  echo "crashed-study digest ${actual_digest} matches golden (${runner} runner)"
done

# Telemetry budget gate: 8 threads hammer the metric hot paths; asserts
# exact totals, the lock-free handle path beating the registry-lookup path,
# and absolute ns/op ceilings (see bench_micro_algorithms.cpp).
echo "=== telemetry ns/op budget ==="
./build/bench/bench_micro_algorithms --assert-telemetry-budget

# -Wall -Wextra are always on; this build promotes them to errors so new
# warnings fail CI instead of scrolling by.
run_suite build-werror "" -DPMWARE_WERROR=ON "$@"
run_suite build-asan "" -DPMWARE_SANITIZE="address;undefined" "$@"
# tsan cannot combine with asan; a third build runs just the tests that
# exercise threads (everything else is single-threaded by design). The
# Caching label rides along: the content caches sit on the concurrent
# request path (shared shard write marks, per-cache mutexes). SchedulerPerf
# races the batched dispatch loop and the device env cache under tsan.
# Concurrency races the striped-counter / sharded-histogram / handle hot
# paths; Alerting races the recorder + engine through the parallel study's
# determinism guard. Population races the streaming wave scheduler's
# workers against the shared fold state and slot arenas. Lifecycle races
# the crashed-study determinism battery (checkpoint/restore and churn
# across shards x threads x runners).
run_suite build-tsan "-L Sharding|Caching|SchedulerPerf|Concurrency|Alerting|Population|Lifecycle" -DPMWARE_SANITIZE="thread" "$@"
# Chaos leg: the fault-injection / outbox / circuit-breaker battery again
# under asan+ubsan, isolated so failures point straight at the recovery
# machinery, plus the cache battery (conditional transfer under faults,
# digest invalidation) and the alerting battery (rule evaluation over the
# failure counters those faults drive). Reuses the sanitized build above.
# Population rides along so the bounded-memory guarantee is asserted under
# asan (every engine-log allocation routed through the slot arenas).
# Lifecycle runs the checkpoint/restore corruption battery and the
# crash/wipe/churn study under asan, where a half-applied restore or a
# stale pointer across a PMS teardown/reboot would trip immediately.
echo "=== ctest: build-asan chaos (-L Robustness|Caching|Alerting|Population|Lifecycle) ==="
(cd build-asan && ctest --output-on-failure -j "$(nproc)" -L "Robustness|Caching|Alerting|Population|Lifecycle")

echo "ci.sh: all five suites passed"
