// Experiment A1 — ablation of PMWare's two energy claims (paper §1, §6):
//
//  (a) Triggered sensing vs always-on sensing: GSM runs continuously while
//      WiFi/GPS fire only on accelerometer triggers and app demand, instead
//      of polling the expensive interfaces around the clock.
//  (b) Shared sensing vs N isolated per-app stacks: one PMS serves all
//      connected applications; without PMWare every app would run its own
//      pipeline, multiplying the sensing energy by N.
//
// All configurations replay the same participant's 2-day ground truth.
#include <cstdio>

#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

using namespace pmware;
using energy::Interface;

namespace {

constexpr int kDays = 2;

struct Fixture {
  Fixture() {
    Rng rng(20141208);
    Rng world_rng = rng.fork(1);
    world::WorldConfig wc;
    world = world::generate_world(wc, world_rng);
    Rng prng = rng.fork(2);
    participants = mobility::make_participants(*world, 1, prng);
    Rng trng = rng.fork(3);
    mobility::ScheduleConfig sc;
    sc.days = kDays;
    trace.emplace(mobility::build_trace(*world, participants[0], sc, trng));
  }
  std::shared_ptr<const world::World> world;
  std::vector<mobility::Participant> participants;
  std::optional<mobility::Trace> trace;
};

struct Row {
  const char* name;
  double sensing_j;
  double total_j;
  double battery_h;
  std::size_t gsm, wifi, gps, accel;
};

/// PMWare triggered sensing with one building-level app.
Row run_pmware(const Fixture& f) {
  Rng rng(5);
  auto device = std::make_unique<sensing::Device>(
      f.world, sensing::oracle_from_trace(*f.trace), sensing::DeviceConfig{},
      rng.fork(1));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{}, nullptr,
                                rng.fork(2));
  core::PlaceAlertRequest request;
  request.app = "app";
  request.granularity = core::Granularity::Building;
  pms.apps().register_place_alerts(request);
  pms.run(TimeWindow{0, days(kDays)});
  const auto& m = pms.meter();
  return {"PMWare triggered (1 app)", m.sensing_j(), m.total_j(),
          m.implied_battery_duration_s(days(kDays)) / 3600.0,
          m.sample_count(Interface::Gsm), m.sample_count(Interface::Wifi),
          m.sample_count(Interface::Gps),
          m.sample_count(Interface::Accelerometer)};
}

/// Always-on polling of a fixed interface set at a fixed period — what an
/// isolated place-discovery implementation typically does.
Row run_always_on(const char* name, std::vector<Interface> interfaces,
                  SimDuration period) {
  energy::EnergyMeter meter;
  sensing::SamplingScheduler scheduler(&meter);
  for (Interface i : interfaces) {
    scheduler.set_callback(i, [](SimTime) {});
    scheduler.set_period(i, period);
  }
  scheduler.run(TimeWindow{0, days(kDays)});
  return {name, meter.sensing_j(), meter.total_j(),
          meter.implied_battery_duration_s(days(kDays)) / 3600.0,
          meter.sample_count(Interface::Gsm),
          meter.sample_count(Interface::Wifi),
          meter.sample_count(Interface::Gps),
          meter.sample_count(Interface::Accelerometer)};
}

void print_row(const Row& row) {
  std::printf("%-34s %9.0f %9.0f %9.1f | %5zu %5zu %5zu %5zu\n", row.name,
              row.sensing_j, row.total_j, row.battery_h, row.gsm, row.wifi,
              row.gps, row.accel);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "ablation_triggered");
  set_log_level(LogLevel::Error);
  telemetry::apply_log_level_flag(argc, argv);
  Fixture fixture;

  std::printf("=== A1: triggered sensing vs always-on, and sensing sharing "
              "(%d-day replay) ===\n\n",
              kDays);
  std::printf("%-34s %9s %9s %9s | %5s %5s %5s %5s\n", "configuration",
              "sense J", "total J", "battery h", "gsm", "wifi", "gps", "accel");
  std::printf("%s\n", std::string(100, '-').c_str());

  const Row pmware = run_pmware(fixture);
  print_row(pmware);
  print_row(run_always_on("always-on GSM @60s (area only)", {Interface::Gsm}, 60));
  print_row(run_always_on("always-on WiFi+GSM @60s",
                          {Interface::Gsm, Interface::Wifi}, 60));
  print_row(run_always_on("always-on GPS @60s",
                          {Interface::Gps}, 60));
  print_row(run_always_on("always-on GPS+WiFi @60s",
                          {Interface::Gps, Interface::Wifi}, 60));

  std::printf("\n--- (b) N apps: one shared PMS vs N isolated stacks ---\n");
  std::printf("%-6s %22s %22s %9s\n", "N", "PMWare shared (J)",
              "N isolated stacks (J)", "saving");
  const energy::Battery battery;
  for (int n : {1, 2, 4, 8}) {
    // Shared: requirements are identical, so the PMS cost is flat in N.
    const double shared = pmware.total_j;
    // Isolated: every app pays its own sensing (baseline is shared by the
    // phone either way, so charge it once).
    const double isolated =
        pmware.total_j + (n - 1) * pmware.sensing_j;
    std::printf("%-6d %18.0f %22.0f %8.1f%%\n", n, shared, isolated,
                100.0 * (isolated - shared) / isolated);
  }
  (void)battery;

  std::printf(
      "\nshape check: PMWare's battery life sits near the GSM-only bound and\n"
      "far above always-on GPS; isolated-stack energy grows linearly in N\n"
      "while the shared PMS stays flat (the paper's redundancy argument).\n");
  if (!json_path.empty() &&
      !telemetry::write_bench_json(json_path, "ablation_triggered",
                                   Json::object(), {0, 1, kDays}))
    return 1;
  return 0;
}
