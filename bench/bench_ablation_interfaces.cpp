// Experiment A2 — interface ablation for place discovery accuracy (paper §4:
// "most of merged places were very close to each other, i.e. academic
// building and library, which can be easily avoided with location interfaces
// such as WiFi").
//
// The same participants and ground truth are replayed through three
// pipelines:
//   - GSM-only          (GCA clusters, WiFi disabled)
//   - GSM + opp. WiFi   (the deployed hybrid)
//   - GPS + Kang        (continuous GPS clustering — accurate but costly)
#include <cstdio>

#include "algorithms/evaluate.hpp"
#include "algorithms/kang.hpp"
#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

using namespace pmware;
using algorithms::DiscoveredOutcome;

namespace {

constexpr int kParticipants = 6;
constexpr int kDays = 7;

struct Row {
  std::size_t correct = 0, merged = 0, divided = 0, spurious = 0;
  double sensing_j = 0;
  double battery_h_sum = 0;
  int runs = 0;

  void add(const algorithms::DiscoveredEvaluation& eval,
           const energy::EnergyMeter& meter) {
    correct += eval.count(DiscoveredOutcome::Correct);
    merged += eval.count(DiscoveredOutcome::Merged);
    divided += eval.count(DiscoveredOutcome::Divided);
    spurious += eval.count(DiscoveredOutcome::Spurious);
    sensing_j += meter.sensing_j();
    battery_h_sum += meter.implied_battery_duration_s(days(kDays)) / 3600.0;
    ++runs;
  }
};

std::vector<algorithms::TruthVisit> truth_of(const mobility::Trace& trace) {
  std::vector<algorithms::TruthVisit> truth;
  for (const auto& v : trace.significant_visits(minutes(10)))
    truth.push_back({v.place, v.window});
  return truth;
}

/// PMWare pipeline (hybrid or GSM-only).
void run_pmware(const std::shared_ptr<const world::World>& world,
                const mobility::Participant& participant,
                const mobility::Trace& trace, bool wifi, Row& row) {
  Rng rng(900 + participant.id);
  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(1));
  core::PmsConfig config;
  config.inference.wifi_enabled = wifi;
  core::PmwareMobileService pms(std::move(device), config, nullptr, rng.fork(2));
  core::PlaceAlertRequest request;
  request.app = "bench";
  request.granularity = core::Granularity::Building;
  pms.apps().register_place_alerts(request);
  pms.run(TimeWindow{0, days(kDays)});
  pms.shutdown(days(kDays));

  std::vector<algorithms::ReportedVisit> reported;
  for (const auto& v : pms.inference().visit_log())
    reported.push_back({static_cast<std::size_t>(v.uid), v.window});
  row.add(algorithms::evaluate_discovered(truth_of(trace), reported),
          pms.meter());
}

/// GPS + Kang baseline: continuous GPS every minute into the clusterer.
void run_gps_kang(const std::shared_ptr<const world::World>& world,
                  const mobility::Participant& participant,
                  const mobility::Trace& trace, Row& row) {
  Rng rng(900 + participant.id);
  sensing::Device device(world, sensing::oracle_from_trace(trace),
                         sensing::DeviceConfig{}, rng.fork(1));
  energy::EnergyMeter meter;
  sensing::SamplingScheduler scheduler(&meter);
  algorithms::GpsPlaceClusterer clusterer;
  scheduler.set_callback(energy::Interface::Gps, [&](SimTime t) {
    clusterer.on_fix(device.read_gps(t));
  });
  scheduler.set_period(energy::Interface::Gps, 60);
  scheduler.run(TimeWindow{0, days(kDays)});
  clusterer.finish(days(kDays));

  std::vector<algorithms::ReportedVisit> reported;
  for (const auto& v : clusterer.visits())
    reported.push_back({v.place_index, v.window});
  row.add(algorithms::evaluate_discovered(truth_of(trace), reported), meter);
}

void print_row(const char* name, const Row& row) {
  const std::size_t detected = row.correct + row.merged + row.divided;
  const double denom = detected == 0 ? 1.0 : static_cast<double>(detected);
  std::printf("%-22s | %4zu %6.1f%% | %4zu %6.1f%% | %4zu %6.1f%% | %4zu | "
              "%9.0f %9.1f\n",
              name, row.correct, 100 * row.correct / denom, row.merged,
              100 * row.merged / denom, row.divided, 100 * row.divided / denom,
              row.spurious, row.sensing_j,
              row.battery_h_sum / std::max(1, row.runs));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "ablation_interfaces");
  set_log_level(LogLevel::Error);
  telemetry::apply_log_level_flag(argc, argv);
  Rng rng(20141208);
  Rng world_rng = rng.fork(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng = rng.fork(2);
  const auto participants =
      mobility::make_participants(*world, kParticipants, prng);

  Row gsm_only, hybrid, gps_kang;
  for (const auto& participant : participants) {
    Rng trng = rng.fork(100 + participant.id);
    mobility::ScheduleConfig sc;
    sc.days = kDays;
    const mobility::Trace trace =
        mobility::build_trace(*world, participant, sc, trng);
    run_pmware(world, participant, trace, false, gsm_only);
    run_pmware(world, participant, trace, true, hybrid);
    run_gps_kang(world, participant, trace, gps_kang);
  }

  std::printf("=== A2: place accuracy by interface (%d participants x %d "
              "days) ===\n\n",
              kParticipants, kDays);
  std::printf("%-22s | %12s | %12s | %12s | %4s | %9s %9s\n", "pipeline",
              "correct", "merged", "divided", "spur", "sense J", "battery h");
  std::printf("%s\n", std::string(104, '-').c_str());
  print_row("GSM only (GCA)", gsm_only);
  print_row("GSM + opp. WiFi", hybrid);
  print_row("GPS + Kang @60s", gps_kang);

  std::printf(
      "\nshape check: GSM-only merges adjacent places (campus, market row);\n"
      "adding opportunistic WiFi recovers most of them at a small energy\n"
      "cost; continuous GPS is accurate outdoors but costs an order of\n"
      "magnitude more energy and degrades indoors.\n");
  if (!json_path.empty() &&
      !telemetry::write_bench_json(json_path, "ablation_interfaces",
                                   Json::object(), {0, 1, kDays}))
    return 1;
  return 0;
}
