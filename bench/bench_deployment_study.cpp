// Experiments E3 / E4 / E5 — the paper's §4 deployment study: 16
// participants, 2 weeks, PMWare + PlaceADs on every device.
//
// Paper numbers reproduced (shape, not absolute):
//   - 123 places discovered, 85 tagged (~70%)
//   - of 62 evaluable (tagged, with departure info):
//       79.03% correct, 14.52% merged, 6.45% divided
//   - PlaceADs like:dislike = 17:3
//   - Figure 5b: map of all places visited by the participants
#include <cstdio>

#include "study/deployment.hpp"
#include "telemetry/export.hpp"
#include "util/logging.hpp"
#include "viz/map_render.hpp"

using namespace pmware;
using algorithms::DiscoveredOutcome;

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "deployment_study");
  set_log_level(LogLevel::Error);
  study::StudyConfig config;  // 16 participants x 14 days, GSM + opp. WiFi
  study::DeploymentStudy study(config);
  const study::StudyResult result = study.run();

  std::printf("=== Deployment study (paper S4): %d participants x %d days ===\n\n",
              config.participants, config.days);

  std::printf("%-34s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%s\n", std::string(58, '-').c_str());
  std::printf("%-34s %10s %10zu\n", "places discovered", "123",
              result.total_discovered());
  std::printf("%-34s %10s %9.1f%%\n", "tagged by participants", "~70%",
              100.0 * static_cast<double>(result.total_tagged()) /
                  static_cast<double>(result.total_discovered()));
  std::printf("%-34s %10s %10zu\n", "evaluable (tagged w/ departure)", "62",
              result.total_evaluable());
  std::printf("%-34s %10s %9.2f%%\n", "correctly discovered", "79.03%",
              100 * result.fraction(DiscoveredOutcome::Correct));
  std::printf("%-34s %10s %9.2f%%\n", "merged", "14.52%",
              100 * result.fraction(DiscoveredOutcome::Merged));
  std::printf("%-34s %10s %9.2f%%\n", "divided", "6.45%",
              100 * result.fraction(DiscoveredOutcome::Divided));

  const std::size_t impressions = result.total_likes() + result.total_dislikes();
  const double like20 =
      impressions == 0 ? 0
                       : 20.0 * static_cast<double>(result.total_likes()) /
                             static_cast<double>(impressions);
  std::printf("%-34s %10s %5.1f:%4.1f\n", "PlaceADs like:dislike", "17:3",
              like20, 20.0 - like20);

  std::printf("\n--- per participant ---\n");
  std::printf("%-16s %-14s %6s %7s %5s | %4s %4s %4s | %5s %5s | %8s\n",
              "participant", "archetype", "places", "tagged", "eval", "corr",
              "merg", "div", "likes", "disl", "battery h");
  for (const auto& p : result.participants) {
    std::printf("%-16s %-14s %6zu %7zu %5zu | %4zu %4zu %4zu | %5zu %5zu | %8.1f\n",
                p.profile.name.c_str(), to_string(p.profile.archetype),
                p.places_discovered, p.places_tagged, p.places_evaluable,
                p.eval.count(DiscoveredOutcome::Correct),
                p.eval.count(DiscoveredOutcome::Merged),
                p.eval.count(DiscoveredOutcome::Divided), p.ad_likes,
                p.ad_dislikes, p.implied_battery_hours);
  }

  // --- Figure 5b: map of discovered places across all participants.
  std::printf("\n--- Figure 5b: map of discovered places (ASCII, %zu places, "
              "'#'=multiple) ---\n",
              result.place_map.size());
  viz::MapExtent extent{study.world().config().origin,
                        study.world().config().extent_m};
  std::vector<viz::MapMarker> markers;
  std::size_t located = 0;
  for (const auto& entry : result.place_map) {
    if (!entry.location) continue;
    ++located;
    markers.push_back({*entry.location, entry.label, 'o', "#4466cc", 4});
  }
  std::printf("%s", viz::render_ascii_map(extent, markers, 60, 24).c_str());
  std::printf("  (%zu of %zu places located via the cloud geo-location API)\n",
              located, result.place_map.size());

  // Energy footprint across the fleet.
  double battery_sum = 0;
  for (const auto& p : result.participants)
    battery_sum += p.implied_battery_hours;
  std::printf("\nfleet average implied battery life: %.1f h (%.1f days) — "
              "triggered sensing, all apps shared\n",
              battery_sum / static_cast<double>(result.participants.size()),
              battery_sum / static_cast<double>(result.participants.size()) / 24);

  if (!json_path.empty()) {
    Json extra = Json::object();
    extra.set("participants", static_cast<std::uint64_t>(
                                  result.participants.size()));
    extra.set("days", config.days);
    extra.set("places_discovered",
              static_cast<std::uint64_t>(result.total_discovered()));
    extra.set("places_tagged",
              static_cast<std::uint64_t>(result.total_tagged()));
    extra.set("evaluable", static_cast<std::uint64_t>(result.total_evaluable()));
    extra.set("fraction_correct", result.fraction(DiscoveredOutcome::Correct));
    extra.set("fraction_merged", result.fraction(DiscoveredOutcome::Merged));
    extra.set("fraction_divided", result.fraction(DiscoveredOutcome::Divided));
    extra.set("ad_likes", static_cast<std::uint64_t>(result.total_likes()));
    extra.set("ad_dislikes",
              static_cast<std::uint64_t>(result.total_dislikes()));
    extra.set("fleet_avg_battery_h",
              battery_sum / static_cast<double>(result.participants.size()));
    if (!telemetry::write_bench_json(json_path, "deployment_study",
                                     std::move(extra)))
      return 1;
  }
  return 0;
}
