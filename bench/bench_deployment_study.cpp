// Experiments E3 / E4 / E5 — the paper's §4 deployment study: 16
// participants, 2 weeks, PMWare + PlaceADs on every device.
//
// Paper numbers reproduced (shape, not absolute):
//   - 123 places discovered, 85 tagged (~70%)
//   - of 62 evaluable (tagged, with departure info):
//       79.03% correct, 14.52% merged, 6.45% divided
//   - PlaceADs like:dislike = 17:3
//   - Figure 5b: map of all places visited by the participants
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "algorithms/gca.hpp"
#include "core/codec.hpp"
#include "energy/meter.hpp"
#include "net/client.hpp"
#include "sensing/device.hpp"
#include "sensing/scheduler.hpp"
#include "sensing/scheduler_reference.hpp"
#include "study/deployment.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "telemetry/process.hpp"
#include "util/logging.hpp"
#include "viz/map_render.hpp"

using namespace pmware;
using algorithms::DiscoveredOutcome;

namespace {

double wall_seconds_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - begin)
      .count();
}

/// Aggregates that must be identical across thread AND shard counts.
struct StudyFingerprint {
  std::size_t discovered = 0, tagged = 0, evaluable = 0;
  std::size_t correct = 0, merged = 0, divided = 0;
  std::size_t likes = 0, dislikes = 0, map_entries = 0;
  double joules = 0;
  cloud::CloudStorage::Stats storage;
  std::uint64_t storage_digest = 0;

  static StudyFingerprint of(const study::StudyResult& r) {
    StudyFingerprint f;
    f.discovered = r.total_discovered();
    f.tagged = r.total_tagged();
    f.evaluable = r.total_evaluable();
    f.correct = r.total(DiscoveredOutcome::Correct);
    f.merged = r.total(DiscoveredOutcome::Merged);
    f.divided = r.total(DiscoveredOutcome::Divided);
    f.likes = r.total_likes();
    f.dislikes = r.total_dislikes();
    f.map_entries = r.place_map.size();
    for (const auto& p : r.participants) f.joules += p.sensing_joules;
    f.storage = r.storage_stats;
    f.storage_digest = r.storage_digest;
    return f;
  }
  bool operator==(const StudyFingerprint&) const = default;
};

/// Synthetic multi-day GSM stream for the recluster microbenchmark: home
/// oscillation overnight, a commute chain, work oscillation during the day
/// — the shape that makes GCA's movement graph cluster. 1-minute cadence.
std::vector<algorithms::CellObservation> synthetic_day(int day) {
  auto cell = [](std::uint32_t cid) {
    world::CellId c;
    c.mcc = 262;
    c.mnc = 1;
    c.lac = 100;
    c.cid = cid;
    return c;
  };
  std::vector<algorithms::CellObservation> obs;
  const SimTime day_start = start_of_day(day);
  for (int m = 0; m < 24 * 60; m += 1) {
    const SimTime t = day_start + minutes(m);
    const int hour = m / 60;
    std::uint32_t cid = 0;
    if (hour < 8 || hour >= 19) {
      cid = (m % 2 == 0) ? 10 : 11;  // home pair oscillating
    } else if (hour == 8) {
      cid = 20 + static_cast<std::uint32_t>(m % 60) / 12;  // commute chain
    } else if (hour < 18) {
      cid = (m % 2 == 0) ? 30 : 31;  // work pair oscillating
    } else {
      cid = 25 - static_cast<std::uint32_t>(m % 60) / 12;  // commute home
    }
    obs.push_back({t, cell(cid)});
  }
  return obs;
}

/// scheduler.run flame self-time per participant-day measured at the
/// pre-batching baseline (commit d0afc9a, this container: cache-on study,
/// shards=16, threads=8, scheduler_run_self_ms over the same tracer
/// snapshot). The recorded "before" of the before/after artifact; the bench
/// prints the live "after" next to it. Note what each side counts: the
/// per-sample scheduler had no frame boundary below scheduler.run, so its
/// self time folded the dispatch machinery (heap pops, per-sample registry
/// lookups, allocating device reads) together with the sampling work it
/// drove. The batched scheduler attributes consumer time to
/// scheduler.sampling.* child frames, so its self time is the dispatch
/// machinery alone — the thing this PR rebuilt. The dispatch microbench
/// below reports the end-to-end sampling-pipeline speedup separately, so
/// neither number has to stand in for the other.
constexpr double kBaselineSchedulerSelfMsPerDay = 498.84;

/// Wall self-time of every "scheduler.run" span in `spans` (its wall cost
/// minus its children's — the flame-fold self-time), in milliseconds.
double scheduler_run_self_ms(const std::vector<telemetry::SpanRecord>& spans) {
  std::vector<std::int64_t> child_ns(spans.size(), 0);
  for (const auto& span : spans)
    if (span.parent != telemetry::SpanRecord::kNoParent)
      child_ns[span.parent] += span.wall_ns;
  double self_ns = 0;
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (spans[i].name == "scheduler.run")
      self_ns += static_cast<double>(
          std::max<std::int64_t>(0, spans[i].wall_ns - child_ns[i]));
  return self_ns / 1e6;
}

/// Linear-interpolated percentile over a fixed-width telemetry histogram,
/// q in [0, 1]. Bucket-resolution approximation — good enough for the
/// checkpoint-size / restore-latency summary the chaos sweep reports.
double histogram_percentile(const Histogram& h, double q) {
  if (h.total() == 0) return 0;
  const double target = q * static_cast<double>(h.total());
  double seen = 0;
  for (std::size_t b = 0; b < h.bucket_count(); ++b) {
    const double c = static_cast<double>(h.count(b));
    if (c > 0 && seen + c >= target)
      return h.bucket_lo(b) +
             (target - seen) / c * (h.bucket_hi(b) - h.bucket_lo(b));
    seen += c;
  }
  return h.hi();
}

/// Keeps `value` observable so the compiler cannot elide the read producing
/// it (the reads also mutate RNG/reselection state, but belt and braces).
template <typename T>
void benchmark_do_not_elide(T&& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Head-to-head dispatch microbench over a world-backed device: the retired
/// heap scheduler driving per-sample allocating reads (the pre-batching hot
/// path, bit-for-bit) vs the run-generation scheduler driving cached
/// zero-alloc run reads. Same world, same dwell-heavy oracle, same cadence.
struct DispatchBench {
  int days = 0;
  double reference_wall_s = 0;
  double batched_wall_s = 0;
  std::uint64_t reference_samples = 0;
  std::uint64_t batched_samples = 0;
  std::uint64_t env_queries = 0;
  std::uint64_t env_hits = 0;
};

DispatchBench run_dispatch_microbench() {
  DispatchBench out;
  out.days = 5;
  Rng world_rng(11);
  world::WorldConfig world_config;
  const auto world = world::generate_world(world_config, world_rng);
  const geo::LatLng home = world->place(0).center;
  const geo::LatLng work = world->place(1).center;
  // Dwell-commute-dwell-commute day: position constant at the anchors
  // (~95% of samples), changing every sample during the two transits.
  sensing::PositionOracle oracle;
  oracle.position = [home, work](SimTime t) {
    const SimTime m = t % hours(24);
    const auto lerp = [](const geo::LatLng& a, const geo::LatLng& b, double f) {
      return geo::LatLng{a.lat + (b.lat - a.lat) * f,
                         a.lng + (b.lng - a.lng) * f};
    };
    if (m < hours(9)) return home;
    if (m < hours(9) + minutes(30))
      return lerp(home, work,
                  static_cast<double>(m - hours(9)) / minutes(30));
    if (m < hours(18)) return work;
    if (m < hours(18) + minutes(30))
      return lerp(work, home,
                  static_cast<double>(m - hours(18)) / minutes(30));
    return home;
  };
  oracle.activity = [](SimTime) { return mobility::Activity::Still; };
  oracle.indoors = [](SimTime) { return true; };

  {
    sensing::DeviceConfig device_config;
    device_config.reuse_world_env = false;  // honest per-sample spatial query
    sensing::Device device(world, oracle, device_config, Rng(21));
    energy::EnergyMeter meter;
    sensing::ReferenceScheduler sched(&meter);
    sched.set_callback(energy::Interface::Gsm, [&](SimTime t) {
      benchmark_do_not_elide(device.read_gsm(t));
      ++out.reference_samples;
    });
    sched.set_callback(energy::Interface::Accelerometer, [&](SimTime t) {
      benchmark_do_not_elide(device.read_accel(t));
      ++out.reference_samples;
    });
    sched.set_period(energy::Interface::Gsm, 60);
    sched.set_period(energy::Interface::Accelerometer, 60);
    const auto begin = std::chrono::steady_clock::now();
    for (int day = 0; day < out.days; ++day)
      sched.run(TimeWindow{day * hours(24), (day + 1) * hours(24)});
    out.reference_wall_s = wall_seconds_since(begin);
  }
  {
    sensing::DeviceConfig device_config;  // reuse_world_env on by default
    sensing::Device device(world, oracle, device_config, Rng(21));
    energy::EnergyMeter meter;
    sensing::SamplingScheduler sched(&meter);
    sched.set_batch_callback(
        energy::Interface::Gsm, [&](std::span<const SimTime> run) {
          return device.read_gsm_run(run, [&](const sensing::GsmReading& r) {
            benchmark_do_not_elide(r);
            ++out.batched_samples;
            return true;
          });
        });
    sched.set_batch_callback(
        energy::Interface::Accelerometer, [&](std::span<const SimTime> run) {
          for (const SimTime t : run) {
            benchmark_do_not_elide(device.read_accel(t));
            ++out.batched_samples;
          }
          return run.size();
        });
    sched.set_period(energy::Interface::Gsm, 60);
    sched.set_period(energy::Interface::Accelerometer, 60);
    const auto begin = std::chrono::steady_clock::now();
    for (int day = 0; day < out.days; ++day)
      sched.run(TimeWindow{day * hours(24), (day + 1) * hours(24)});
    out.batched_wall_s = wall_seconds_since(begin);
    out.env_queries = device.env_queries();
    out.env_hits = device.env_hits();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "deployment_study");
  int fixed_threads = 0;  // 0 = sweep 1/2/4/8
  int fixed_shards = 0;   // 0 = sweep 1/4/16
  // Default fault scenarios: a mid-study blackout, a lossy user API, and a
  // slow-but-healthy cloud. --fault-plan replaces the list with one plan.
  std::vector<std::string> fault_specs = {
      "outage=5d..8d",
      "route=/api/users,error=0.25,from=2d,to=12d",
      "latency=2,from=0,to=12d",
  };
  // Default chaos plan for the lifecycle sweep: crash/restart injection
  // through the mid-study window, a privacy-wipe wave, and a late-join
  // cohort. --chaos-plan replaces it.
  std::string chaos_spec =
      "crash=2d..9d,crash_rate=0.2,restart_delay=2h;"
      "wipe=6d..7d,wipe_rate=0.25;join=0d..5d,join_rate=0.2";
  bool cache_for_sweeps = true;  // --cache on|off: main sweeps' cache setting
  // --max-pop caps the population_sweep's largest row (default 100k; the
  // committed battery runs the full ladder, smoke runs can pass 1000).
  int max_population = 100000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0)
      fixed_threads = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--shards") == 0)
      fixed_shards = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--fault-plan") == 0)
      fault_specs = {argv[i + 1]};
    if (std::strcmp(argv[i], "--chaos-plan") == 0)
      chaos_spec = argv[i + 1];
    if (std::strcmp(argv[i], "--cache") == 0)
      cache_for_sweeps = std::strcmp(argv[i + 1], "off") != 0;
    if (std::strcmp(argv[i], "--max-pop") == 0)
      max_population = std::atoi(argv[i + 1]);
  }
  set_log_level(LogLevel::Error);
  telemetry::apply_log_level_flag(argc, argv);
  study::StudyConfig config;  // 16 participants x 14 days, GSM + opp. WiFi
  config.cache = cache_for_sweeps;

  // --- Scheduler dispatch microbench, first: it drives its own schedulers
  // and devices through the global registry/tracer, and the sweeps below
  // reset both per run, so the study telemetry stays clean.
  const DispatchBench dispatch = run_dispatch_microbench();

  // --- Shard x thread sweep: the same study at every (shards, threads)
  // configuration. Results must be byte-identical everywhere; wall-clock and
  // the shard lock-wait telemetry show how sharding removes the old global
  // dispatch bottleneck as workers are added.
  std::vector<int> thread_counts =
      fixed_threads > 0 ? std::vector<int>{fixed_threads}
                        : std::vector<int>{1, 2, 4, 8};
  std::vector<int> shard_counts =
      fixed_shards > 0 ? std::vector<int>{fixed_shards}
                       : std::vector<int>{1, 4, 16};

  struct SweepEntry {
    int shards = 0;
    int threads = 0;
    double wall_s = 0;
    std::uint64_t shard_ops = 0;       ///< cloud_shard_requests_total, summed
    double lock_wait_sum_us = 0;       ///< cloud_shard_lock_wait_us total
    double lock_wait_max_us = 0;
    std::uint64_t lock_wait_count = 0;
  };
  std::vector<SweepEntry> sweep;
  std::vector<study::StudyResult> results;
  for (const int shards : shard_counts) {
    for (const int threads : thread_counts) {
      // Fresh registry/tracer per run so study_* counters and spans reflect
      // one study; the final run's telemetry lands in the JSON dump.
      telemetry::registry().reset();
      telemetry::tracer().reset();
      config.shards = shards;
      config.threads = threads;
      study::DeploymentStudy study_run(config);
      const auto begin = std::chrono::steady_clock::now();
      results.push_back(study_run.run());
      SweepEntry entry;
      entry.shards = shards;
      entry.threads = threads;
      entry.wall_s = wall_seconds_since(begin);
      const auto& reg = telemetry::registry();
      entry.shard_ops = reg.family_total("cloud_shard_requests_total");
      if (const auto* hist =
              reg.find_histogram("cloud_shard_lock_wait_us", {})) {
        const auto snap = hist->snapshot();
        entry.lock_wait_sum_us = snap.stats.sum();
        entry.lock_wait_max_us = snap.stats.max();
        entry.lock_wait_count = static_cast<std::uint64_t>(snap.stats.count());
      }
      sweep.push_back(entry);
    }
  }
  const study::StudyResult& result = results.front();
  const StudyFingerprint baseline_fp = StudyFingerprint::of(result);
  bool identical = true;
  for (const auto& r : results)
    identical = identical && (StudyFingerprint::of(r) == baseline_fp);
  // Thread-scaling view: the rows at the largest shard count (the default
  // configuration), so speedups compare like with like.
  std::vector<SweepEntry> scaling;
  for (const auto& entry : sweep)
    if (entry.shards == shard_counts.back()) scaling.push_back(entry);

  // --- Fault sweep: the same study under scripted cloud-side fault plans.
  // Recovery equivalence is the headline assertion: after outage + outbox
  // drain, the cloud content digest must be byte-identical to the no-fault
  // baseline (results.front() — every sweep run above was fault-free).
  struct FaultEntry {
    std::string plan;
    double wall_s = 0;
    std::uint64_t digest = 0;
    bool matches_baseline = false;
    std::uint64_t sync_failures = 0;
    std::uint64_t outbox_recovered = 0;
    std::uint64_t outbox_evicted = 0;
    std::uint64_t outbox_pending = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t faults_injected = 0;
  };
  std::vector<FaultEntry> fault_sweep;
  for (const std::string& spec : fault_specs) {
    telemetry::registry().reset();
    telemetry::tracer().reset();
    study::StudyConfig faulted = config;
    faulted.shards = shard_counts.back();
    faulted.threads = thread_counts.back();
    faulted.fault_plan = net::FaultPlan::parse(spec);
    const auto begin = std::chrono::steady_clock::now();
    const study::StudyResult run = study::DeploymentStudy(faulted).run();
    FaultEntry entry;
    entry.plan = spec;
    entry.wall_s = wall_seconds_since(begin);
    entry.digest = run.storage_digest;
    StudyFingerprint fp = StudyFingerprint::of(run);
    entry.matches_baseline = fp == baseline_fp;
    const auto& reg = telemetry::registry();
    entry.sync_failures = reg.family_total("pms_sync_failures_total");
    entry.outbox_recovered = reg.family_total("pms_outbox_recovered_total");
    entry.outbox_evicted = reg.family_total("pms_outbox_evicted_total");
    entry.breaker_opens = reg.family_total("net_breaker_open_total");
    entry.faults_injected = reg.family_total("cloud_faults_injected_total");
    for (const auto& p : run.participants)
      entry.outbox_pending += p.pms_stats.outbox_pending;
    fault_sweep.push_back(std::move(entry));
  }
  bool all_recovered = true;
  for (const auto& entry : fault_sweep)
    all_recovered =
        all_recovered && entry.matches_baseline && entry.outbox_pending == 0;

  // --- Chaos sweep: the same study under a device-lifecycle plan (crash
  // injection + checkpoint restarts, privacy wipes, late joins). A crashed
  // study legitimately diverges from the no-fault digest (devices are dark
  // while rebooting), so the headline assertion here is DETERMINISM: the
  // digest must be byte-identical at every shards x threads x cache x
  // runner combination, and no surviving participant's records may be lost
  // (outbox balance closes with zero evicted and zero pending).
  struct ChaosEntry {
    int shards = 0;
    int threads = 0;
    bool cache = false;
    const char* runner = "";
    double wall_s = 0;
    std::uint64_t digest = 0;
    std::uint64_t restarts = 0;
    std::uint64_t wipes = 0;
    std::uint64_t tombstone_rejections = 0;
    std::uint64_t enqueued = 0, delivered = 0, recovered = 0;
    std::uint64_t evicted = 0, dropped = 0, pending = 0;
  };
  struct HistSummary {
    std::uint64_t count = 0;
    double mean = 0, max = 0, p50 = 0, p99 = 0;
  };
  std::vector<ChaosEntry> chaos_sweep;
  HistSummary checkpoint_bytes, restore_us;
  {
    const struct {
      int shards, threads;
      bool cache;
      study::RunnerMode runner;
      const char* runner_name;
    } kCombos[] = {
        {1, 1, true, study::RunnerMode::Materialized, "materialized"},
        {16, 8, true, study::RunnerMode::Materialized, "materialized"},
        {1, 1, true, study::RunnerMode::Streaming, "streaming"},
        {16, 8, true, study::RunnerMode::Streaming, "streaming"},
        {16, 8, false, study::RunnerMode::Materialized, "materialized"},
    };
    for (const auto& combo : kCombos) {
      telemetry::registry().reset();
      telemetry::tracer().reset();
      study::StudyConfig chaotic = config;
      chaotic.shards = combo.shards;
      chaotic.threads = combo.threads;
      chaotic.cache = combo.cache;
      chaotic.runner = combo.runner;
      chaotic.fault_plan = net::FaultPlan::parse(chaos_spec);
      const auto begin = std::chrono::steady_clock::now();
      const study::StudyResult run = study::DeploymentStudy(chaotic).run();
      ChaosEntry entry;
      entry.shards = combo.shards;
      entry.threads = combo.threads;
      entry.cache = combo.cache;
      entry.runner = combo.runner_name;
      entry.wall_s = wall_seconds_since(begin);
      entry.digest = run.storage_digest;
      const auto& reg = telemetry::registry();
      entry.restarts = reg.family_total("pms_restarts_total");
      entry.wipes = reg.family_total("cloud_wipe_tombstones_total");
      entry.tombstone_rejections =
          reg.family_total("cloud_tombstone_rejections_total");
      entry.enqueued = reg.family_total("pms_outbox_enqueued_total");
      entry.delivered = reg.family_total("pms_outbox_delivered_total");
      entry.recovered = reg.family_total("pms_outbox_recovered_total");
      entry.evicted = reg.family_total("pms_outbox_evicted_total");
      entry.dropped = reg.family_total("pms_outbox_dropped_total");
      entry.pending =
          entry.enqueued - entry.delivered - entry.evicted - entry.dropped;
      // Checkpoint-size / restore-latency distributions from the last run
      // (one combo is as good as another: the checkpoint stream is
      // deterministic, only wall latency varies).
      const auto summarize = [&](const char* name, HistSummary& out) {
        if (const auto* hist = reg.find_histogram(name, {})) {
          const auto snap = hist->snapshot();
          out.count = static_cast<std::uint64_t>(snap.stats.count());
          out.mean = snap.stats.mean();
          out.max = snap.stats.max();
          out.p50 = histogram_percentile(snap.buckets, 0.50);
          out.p99 = histogram_percentile(snap.buckets, 0.99);
        }
      };
      summarize("pms_checkpoint_bytes", checkpoint_bytes);
      summarize("pms_restore_wall_us", restore_us);
      chaos_sweep.push_back(entry);
    }
  }
  bool chaos_identical = true, chaos_zero_lost = true;
  for (const auto& entry : chaos_sweep) {
    chaos_identical =
        chaos_identical && entry.digest == chaos_sweep.front().digest;
    chaos_zero_lost =
        chaos_zero_lost && entry.evicted == 0 && entry.pending == 0;
  }

  // --- Cache sweep: the same study with the content-addressed caches off
  // vs on. Equivalence is the headline assertion — the science results and
  // the cloud content digest must be byte-identical either way (caching
  // only removes work) — while cloud_requests_total and the recluster
  // counters collapse with the caches engaged.
  struct CacheEntry {
    bool cache = false;
    double wall_s = 0;
    std::uint64_t digest = 0;
    bool matches_off = false;
    std::uint64_t cloud_requests = 0;
    std::uint64_t device_reclusters = 0;   ///< core_recluster_total
    std::uint64_t cloud_reclusters = 0;    ///< core_recluster_incremental_total
    std::uint64_t local_hits = 0;
    std::uint64_t cloud_hits = 0;
    std::uint64_t recomputes = 0;
    std::uint64_t misses = 0;
    std::uint64_t not_modified = 0;
    std::uint64_t bytes_saved = 0;
    std::uint64_t evictions = 0;
  };
  const char* const cache_names[] = {"pms_gca", "cloud_gca", "cloud_analytics",
                                     "net_conditional"};
  std::vector<CacheEntry> cache_sweep;
  for (const bool cache_on : {false, true}) {
    telemetry::registry().reset();
    telemetry::tracer().reset();
    study::StudyConfig cached = config;
    cached.shards = shard_counts.back();
    cached.threads = thread_counts.back();
    cached.cache = cache_on;
    const auto begin = std::chrono::steady_clock::now();
    const study::StudyResult run = study::DeploymentStudy(cached).run();
    CacheEntry entry;
    entry.cache = cache_on;
    entry.wall_s = wall_seconds_since(begin);
    entry.digest = run.storage_digest;
    const auto& reg = telemetry::registry();
    entry.cloud_requests = reg.family_total("cloud_requests_total");
    entry.device_reclusters = reg.family_total("core_recluster_total");
    entry.cloud_reclusters = reg.family_total("core_recluster_incremental_total");
    const auto outcome_total = [&](const char* outcome) {
      std::uint64_t n = 0;
      for (const char* name : cache_names)
        if (const auto* c = reg.find_counter(
                "cache_outcomes_total", {{"cache", name}, {"outcome", outcome}}))
          n += static_cast<std::uint64_t>(c->value());
      return n;
    };
    entry.local_hits = outcome_total("local_hit");
    entry.cloud_hits = outcome_total("cloud_hit");
    entry.recomputes = outcome_total("recompute");
    entry.misses = outcome_total("miss");
    entry.not_modified = reg.family_total("net_not_modified_total");
    entry.bytes_saved = reg.family_total("net_bytes_saved_total");
    entry.evictions = reg.family_total("cache_evictions_total");
    cache_sweep.push_back(entry);
  }
  cache_sweep.back().matches_off =
      cache_sweep.back().digest == cache_sweep.front().digest;
  cache_sweep.front().matches_off = true;
  const bool cache_equivalent = cache_sweep.back().matches_off;

  // --- Conditional-transfer microbenchmarks: the effects the study only
  // shows in aggregate, isolated. (a) A read-heavy client re-fetching the
  // same resources: after the first fetch every GET revalidates via
  // If-None-Match and moves a bodyless 304 instead of the representation.
  // (b) A device re-uploading an unchanged movement graph: the cloud
  // recognizes the digest and skips the clustering wholesale.
  struct ConditionalBench {
    int gets = 0;
    std::uint64_t not_modified = 0;
    std::uint64_t bytes_saved = 0;
    int discover_posts = 0;
    std::uint64_t discover_cloud_hits = 0;
    std::uint64_t reclusters = 0;
  } conditional;
  {
    telemetry::registry().reset();
    cloud::CloudInstance micro_cloud(cloud::CloudConfig{},
                                     cloud::GeoLocationService({}), Rng(7));
    net::RestClient micro_client(&micro_cloud.router(),
                                 net::NetworkConditions{}, Rng(8));
    micro_client.set_cache_policy({true, 64});
    Json reg_body = Json::object();
    reg_body.set("imei", "358240050000001");
    reg_body.set("email", "cachebench@study.pmware.org");
    net::HttpRequest reg_req;
    reg_req.method = net::Method::Post;
    reg_req.path = "/api/register";
    reg_req.body = std::move(reg_body);
    const net::HttpResponse reg_res = micro_client.send(reg_req);
    micro_client.set_auth_token(reg_res.body.at("token").as_string());
    const std::string user =
        std::to_string(reg_res.body.at("user").as_int());

    // Seed one place and one profile, then hammer the GETs.
    net::HttpRequest put;
    put.method = net::Method::Put;
    put.path = "/api/users/" + user + "/places/1";
    put.body = core::to_json(core::PlaceRecord{});
    micro_client.send(put);
    const int kGetRounds = 50;
    for (int i = 0; i < kGetRounds; ++i) {
      net::HttpRequest get;
      get.method = net::Method::Get;
      get.path = "/api/users/" + user + "/places";
      micro_client.send(get);
      ++conditional.gets;
    }
    conditional.not_modified = micro_client.stats().not_modified;
    conditional.bytes_saved = micro_client.stats().bytes_saved;

    // Re-upload an identical movement graph: one recluster, then hits.
    const auto day_obs = synthetic_day(0);
    Json observations = Json::array();
    for (const auto& obs : day_obs) {
      Json o = Json::object();
      o.set("t", static_cast<std::int64_t>(obs.t));
      o.set("cell", core::to_json(obs.cell));
      observations.push_back(std::move(o));
    }
    const int kDiscoverRounds = 20;
    for (int i = 0; i < kDiscoverRounds; ++i) {
      net::HttpRequest discover;
      discover.method = net::Method::Post;
      discover.path = "/api/places/discover";
      discover.body = Json::object();
      Json obs_copy = observations;
      discover.body.set("observations", std::move(obs_copy));
      micro_client.send(discover);
      ++conditional.discover_posts;
    }
    const auto& reg = telemetry::registry();
    if (const auto* c = telemetry::registry().find_counter(
            "cache_outcomes_total",
            {{"cache", "cloud_gca"}, {"outcome", "cloud_hit"}}))
      conditional.discover_cloud_hits = static_cast<std::uint64_t>(c->value());
    conditional.reclusters = reg.family_total("core_recluster_incremental_total");
  }

  // World geometry for the Figure-5b map (same config -> same world).
  study::DeploymentStudy study(config);

  std::printf("=== Deployment study (paper S4): %d participants x %d days ===\n\n",
              config.participants, config.days);

  std::printf("%-34s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%s\n", std::string(58, '-').c_str());
  std::printf("%-34s %10s %10zu\n", "places discovered", "123",
              result.total_discovered());
  std::printf("%-34s %10s %9.1f%%\n", "tagged by participants", "~70%",
              100.0 * static_cast<double>(result.total_tagged()) /
                  static_cast<double>(result.total_discovered()));
  std::printf("%-34s %10s %10zu\n", "evaluable (tagged w/ departure)", "62",
              result.total_evaluable());
  std::printf("%-34s %10s %9.2f%%\n", "correctly discovered", "79.03%",
              100 * result.fraction(DiscoveredOutcome::Correct));
  std::printf("%-34s %10s %9.2f%%\n", "merged", "14.52%",
              100 * result.fraction(DiscoveredOutcome::Merged));
  std::printf("%-34s %10s %9.2f%%\n", "divided", "6.45%",
              100 * result.fraction(DiscoveredOutcome::Divided));

  const std::size_t impressions = result.total_likes() + result.total_dislikes();
  const double like20 =
      impressions == 0 ? 0
                       : 20.0 * static_cast<double>(result.total_likes()) /
                             static_cast<double>(impressions);
  std::printf("%-34s %10s %5.1f:%4.1f\n", "PlaceADs like:dislike", "17:3",
              like20, 20.0 - like20);

  std::printf("\n--- per participant ---\n");
  std::printf("%-16s %-14s %6s %7s %5s | %4s %4s %4s | %5s %5s | %8s\n",
              "participant", "archetype", "places", "tagged", "eval", "corr",
              "merg", "div", "likes", "disl", "battery h");
  for (const auto& p : result.participants) {
    std::printf("%-16s %-14s %6zu %7zu %5zu | %4zu %4zu %4zu | %5zu %5zu | %8.1f\n",
                p.profile.name.c_str(), to_string(p.profile.archetype),
                p.places_discovered, p.places_tagged, p.places_evaluable,
                p.eval.count(DiscoveredOutcome::Correct),
                p.eval.count(DiscoveredOutcome::Merged),
                p.eval.count(DiscoveredOutcome::Divided), p.ad_likes,
                p.ad_dislikes, p.implied_battery_hours);
  }

  // --- Figure 5b: map of discovered places across all participants.
  std::printf("\n--- Figure 5b: map of discovered places (ASCII, %zu places, "
              "'#'=multiple) ---\n",
              result.place_map.size());
  viz::MapExtent extent{study.world().config().origin,
                        study.world().config().extent_m};
  std::vector<viz::MapMarker> markers;
  std::size_t located = 0;
  for (const auto& entry : result.place_map) {
    if (!entry.location) continue;
    ++located;
    markers.push_back({*entry.location, entry.label, 'o', "#4466cc", 4});
  }
  std::printf("%s", viz::render_ascii_map(extent, markers, 60, 24).c_str());
  std::printf("  (%zu of %zu places located via the cloud geo-location API)\n",
              located, result.place_map.size());

  // Energy footprint across the fleet.
  double battery_sum = 0;
  for (const auto& p : result.participants)
    battery_sum += p.implied_battery_hours;
  std::printf("\nfleet average implied battery life: %.1f h (%.1f days) — "
              "triggered sensing, all apps shared\n",
              battery_sum / static_cast<double>(result.participants.size()),
              battery_sum / static_cast<double>(result.participants.size()) / 24);

  // --- Thread-scaling report (at the default shard count).
  std::printf("\n--- thread scaling (%zu participants, %d shards, "
              "identical results: %s) ---\n",
              result.participants.size(), shard_counts.back(),
              identical ? "yes" : "NO");
  std::printf("%8s %10s %10s\n", "threads", "wall s", "speedup");
  for (const auto& entry : scaling)
    std::printf("%8d %10.2f %9.2fx\n", entry.threads, entry.wall_s,
                scaling.front().wall_s / entry.wall_s);

  // --- Shard contention report: total time spent waiting on shard locks
  // per configuration. shards=1 reproduces the old global-mutex cloud;
  // the wait total collapsing as shards grow is the point of the redesign.
  std::printf("\n--- shard contention (cloud_shard_lock_wait_us) ---\n");
  std::printf("%8s %8s %10s %12s %14s %12s\n", "shards", "threads", "wall s",
              "shard ops", "wait sum ms", "wait max us");
  for (const auto& entry : sweep)
    std::printf("%8d %8d %10.2f %12llu %14.2f %12.0f\n", entry.shards,
                entry.threads, entry.wall_s,
                static_cast<unsigned long long>(entry.shard_ops),
                entry.lock_wait_sum_us / 1e3, entry.lock_wait_max_us);

  // --- Fault-sweep report: every plan must end byte-identical to the
  // no-fault baseline with an empty outbox — zero records lost.
  std::printf("\n--- fault sweep (recovery equivalence, all recovered: %s) ---\n",
              all_recovered ? "yes" : "NO");
  std::printf("%-44s %8s %7s %6s %6s %6s %7s %8s\n", "plan", "wall s",
              "match", "fails", "recov", "evict", "pending", "injected");
  for (const auto& entry : fault_sweep)
    std::printf("%-44s %8.2f %7s %6llu %6llu %6llu %7llu %8llu\n",
                entry.plan.c_str(), entry.wall_s,
                entry.matches_baseline ? "yes" : "NO",
                static_cast<unsigned long long>(entry.sync_failures),
                static_cast<unsigned long long>(entry.outbox_recovered),
                static_cast<unsigned long long>(entry.outbox_evicted),
                static_cast<unsigned long long>(entry.outbox_pending),
                static_cast<unsigned long long>(entry.faults_injected));

  // --- Chaos-sweep report: a crashed study must stay deterministic across
  // every execution shape, with the outbox balance closing at zero lost.
  std::printf("\n--- chaos sweep (plan \"%s\")\n    digests identical: %s, "
              "zero records lost: %s ---\n",
              chaos_spec.c_str(), chaos_identical ? "yes" : "NO",
              chaos_zero_lost ? "yes" : "NO");
  std::printf("%7s %8s %6s %-13s %8s %9s %6s %7s %8s %8s %20s\n", "shards",
              "threads", "cache", "runner", "wall s", "restarts", "wipes",
              "rejects", "dropped", "pending", "digest");
  for (const auto& entry : chaos_sweep)
    std::printf("%7d %8d %6s %-13s %8.2f %9llu %6llu %7llu %8llu %8llu %20llu\n",
                entry.shards, entry.threads, entry.cache ? "on" : "off",
                entry.runner, entry.wall_s,
                static_cast<unsigned long long>(entry.restarts),
                static_cast<unsigned long long>(entry.wipes),
                static_cast<unsigned long long>(entry.tombstone_rejections),
                static_cast<unsigned long long>(entry.dropped),
                static_cast<unsigned long long>(entry.pending),
                static_cast<unsigned long long>(entry.digest));
  std::printf("  checkpoints: %llu written, %.0f B mean, %.0f B p50, %.0f B "
              "p99, %.0f B max\n",
              static_cast<unsigned long long>(checkpoint_bytes.count),
              checkpoint_bytes.mean, checkpoint_bytes.p50, checkpoint_bytes.p99,
              checkpoint_bytes.max);
  std::printf("  restores:    %llu replayed, %.0f us mean, %.0f us p50, "
              "%.0f us p99, %.0f us max\n",
              static_cast<unsigned long long>(restore_us.count),
              restore_us.mean, restore_us.p50, restore_us.p99, restore_us.max);

  // --- Cache-sweep report: equal digests with collapsed request/recluster
  // counts is the subsystem working as designed.
  std::printf("\n--- cache sweep (content-addressed caches, results "
              "identical: %s) ---\n",
              cache_equivalent ? "yes" : "NO");
  std::printf("%6s %8s %10s %10s %10s %8s %8s %8s %8s %6s %10s\n", "cache",
              "wall s", "cloud req", "dev recl", "cloud recl", "lhit", "chit",
              "recomp", "miss", "304s", "bytes save");
  for (const auto& entry : cache_sweep)
    std::printf("%6s %8.2f %10llu %10llu %10llu %8llu %8llu %8llu %8llu "
                "%6llu %10llu\n",
                entry.cache ? "on" : "off", entry.wall_s,
                static_cast<unsigned long long>(entry.cloud_requests),
                static_cast<unsigned long long>(entry.device_reclusters),
                static_cast<unsigned long long>(entry.cloud_reclusters),
                static_cast<unsigned long long>(entry.local_hits),
                static_cast<unsigned long long>(entry.cloud_hits),
                static_cast<unsigned long long>(entry.recomputes),
                static_cast<unsigned long long>(entry.misses),
                static_cast<unsigned long long>(entry.not_modified),
                static_cast<unsigned long long>(entry.bytes_saved));
  std::printf("  conditional GET microbench: %d GETs -> %llu not-modified, "
              "%llu body bytes never moved\n",
              conditional.gets,
              static_cast<unsigned long long>(conditional.not_modified),
              static_cast<unsigned long long>(conditional.bytes_saved));
  std::printf("  repeat-discover microbench: %d identical uploads -> %llu "
              "served from cache, %llu reclusters\n",
              conditional.discover_posts,
              static_cast<unsigned long long>(conditional.discover_cloud_hits),
              static_cast<unsigned long long>(conditional.reclusters));

  // --- Scheduler dispatch report: run-generation batching vs the retired
  // per-sample heap path, plus the study-level scheduler.run flame
  // self-time the ROADMAP's >=10x bar is measured against. The tracer still
  // holds the cache-on study's spans (nothing after it resets the tracer),
  // so the self-time is the real study's, not a synthetic one.
  const std::vector<telemetry::SpanRecord> study_spans =
      telemetry::tracer().snapshot();
  const double study_sched_self_ms = scheduler_run_self_ms(study_spans);
  // The consumer side of the same window: wall time the scheduler spent
  // inside sampling callbacks, folded per interface per window into
  // scheduler.sampling.* frames. Recorded next to the self time so the
  // artifact shows both halves of the old, undivided scheduler.run cost.
  double study_sampling_ms = 0;
  for (const auto& span : study_spans)
    if (span.name.rfind("scheduler.sampling.", 0) == 0)
      study_sampling_ms += static_cast<double>(span.wall_ns) / 1e6;
  const double participant_days =
      static_cast<double>(config.participants) * static_cast<double>(config.days);
  const double self_ms_per_day = study_sched_self_ms / participant_days;
  const double sampling_ms_per_day = study_sampling_ms / participant_days;
  const double sched_improvement =
      self_ms_per_day > 0 ? kBaselineSchedulerSelfMsPerDay / self_ms_per_day
                          : 0.0;
  const double reference_rate =
      dispatch.reference_wall_s > 0
          ? static_cast<double>(dispatch.reference_samples) /
                dispatch.reference_wall_s
          : 0.0;
  const double batched_rate =
      dispatch.batched_wall_s > 0
          ? static_cast<double>(dispatch.batched_samples) /
                dispatch.batched_wall_s
          : 0.0;
  std::printf("\n--- scheduler dispatch (run-generation batching, %d "
              "simulated days) ---\n",
              dispatch.days);
  std::printf("  reference heap + per-sample reads: %8.3f s  (%llu samples, "
              "%.0f/s)\n",
              dispatch.reference_wall_s,
              static_cast<unsigned long long>(dispatch.reference_samples),
              reference_rate);
  std::printf("  batched runs + cached world env:   %8.3f s  (%llu samples, "
              "%.0f/s)  => %.1fx\n",
              dispatch.batched_wall_s,
              static_cast<unsigned long long>(dispatch.batched_samples),
              batched_rate,
              reference_rate > 0 ? batched_rate / reference_rate : 0.0);
  std::printf("  world-env cache: %llu of %llu queries answered from cache "
              "(%.1f%%)\n",
              static_cast<unsigned long long>(dispatch.env_hits),
              static_cast<unsigned long long>(dispatch.env_queries),
              dispatch.env_queries > 0
                  ? 100.0 * static_cast<double>(dispatch.env_hits) /
                        static_cast<double>(dispatch.env_queries)
                  : 0.0);
  std::printf("  study scheduler.run self-time: %.2f ms/participant-day "
              "(pre-batching baseline %.1f, %.0fx)\n",
              self_ms_per_day, kBaselineSchedulerSelfMsPerDay,
              sched_improvement);
  std::printf("  study sampling work (scheduler.sampling.*): %.1f "
              "ms/participant-day, attributed to its own frames\n",
              sampling_ms_per_day);

  // --- Sequential-vs-incremental recluster cost: daily recluster passes
  // over a growing synthetic trace, full rebuild each day vs GcaState.
  const int recluster_days = 14;
  std::vector<algorithms::CellObservation> stream;
  double full_s = 0, incremental_s = 0;
  bool recluster_identical = true;
  {
    algorithms::GcaState state;
    for (int day = 0; day < recluster_days; ++day) {
      const auto day_obs = synthetic_day(day);
      stream.insert(stream.end(), day_obs.begin(), day_obs.end());
      auto begin = std::chrono::steady_clock::now();
      const algorithms::GcaResult full = algorithms::run_gca(stream);
      full_s += wall_seconds_since(begin);
      begin = std::chrono::steady_clock::now();
      const algorithms::GcaResult inc = state.run(stream);
      incremental_s += wall_seconds_since(begin);
      recluster_identical =
          recluster_identical && full.cell_to_place == inc.cell_to_place &&
          full.places.size() == inc.places.size() &&
          full.visits.size() == inc.visits.size();
    }
    std::printf("\n--- recluster cost (%d daily passes, %zu observations, "
                "identical: %s) ---\n",
                recluster_days, stream.size(),
                recluster_identical ? "yes" : "NO");
    std::printf("  full rebuild each pass: %8.1f ms\n", full_s * 1e3);
    std::printf("  incremental (GcaState): %8.1f ms (%.1fx, %zu of %zu "
                "passes incremental)\n",
                incremental_s * 1e3,
                incremental_s > 0 ? full_s / incremental_s : 0.0,
                state.incremental_passes(), state.passes());
  }

  // --- Population sweep: the streaming runner's scale battery. Each row
  // runs a study at the next population decade in aggregate mode and
  // records wall time, participant-day throughput, the process RSS
  // high-water mark, cloud request rate, and per-shard request heat. The
  // sim-day count per row shrinks as N grows so the ladder stays runnable
  // on a single core (throughput and memory per participant-day are
  // day-count-invariant; EXPERIMENTS.md documents the cadence).
  struct PopulationEntry {
    int participants = 0;
    int days = 0;
    double wall_s = 0;
    double pd_per_s = 0;
    std::uint64_t cloud_requests = 0;
    double cloud_req_per_s = 0;
    std::uint64_t peak_rss_bytes = 0;
    std::uint64_t storage_digest = 0;
    std::vector<std::uint64_t> shard_heat;  ///< requests per storage shard
  };
  std::vector<PopulationEntry> population_sweep;
  {
    const struct {
      int participants, days;
    } kLadder[] = {{16, 14}, {1000, 2}, {10000, 1}, {100000, 1}};
    study::StudyConfig pop_config;
    pop_config.cache = cache_for_sweeps;
    pop_config.runner = study::RunnerMode::Streaming;
    pop_config.threads = fixed_threads > 0 ? fixed_threads : 2;
    pop_config.shards = fixed_shards > 0
                            ? fixed_shards
                            : static_cast<int>(
                                  cloud::CloudStorage::kDefaultShards);
    std::printf("\n--- population sweep (streaming runner, %d threads, %d "
                "shards) ---\n",
                pop_config.threads, pop_config.shards);
    for (const auto& rung : kLadder) {
      if (rung.participants > max_population) break;
      telemetry::registry().reset();
      telemetry::tracer().reset();
      pop_config.participants = rung.participants;
      pop_config.days = rung.days;
      std::printf("  running %d x %dd...\n", rung.participants, rung.days);
      std::fflush(stdout);
      study::DeploymentStudy study_run(pop_config);
      const auto begin = std::chrono::steady_clock::now();
      const study::StudyResult run = study_run.run();
      PopulationEntry entry;
      entry.participants = rung.participants;
      entry.days = rung.days;
      entry.wall_s = wall_seconds_since(begin);
      const double pd = static_cast<double>(rung.participants) *
                        static_cast<double>(rung.days);
      entry.pd_per_s = entry.wall_s > 0 ? pd / entry.wall_s : 0.0;
      const auto& reg = telemetry::registry();
      entry.cloud_requests = reg.family_total("cloud_requests_total");
      entry.cloud_req_per_s =
          entry.wall_s > 0
              ? static_cast<double>(entry.cloud_requests) / entry.wall_s
              : 0.0;
      entry.peak_rss_bytes = telemetry::read_process_stats().peak_rss_bytes;
      entry.storage_digest = run.storage_digest;
      for (int s = 0; s < pop_config.shards; ++s)
        entry.shard_heat.push_back(reg.counter_value(
            "cloud_shard_requests_total", {{"shard", std::to_string(s)}}));
      population_sweep.push_back(std::move(entry));
    }
    std::printf("%12s %5s %10s %10s %12s %12s %11s %20s\n", "participants",
                "days", "wall s", "pd/s", "cloud req/s", "peak rss MB",
                "shard skew", "digest");
    for (const auto& entry : population_sweep) {
      std::uint64_t heat_min = ~0ull, heat_max = 0;
      for (const std::uint64_t h : entry.shard_heat) {
        heat_min = std::min(heat_min, h);
        heat_max = std::max(heat_max, h);
      }
      const double skew =
          heat_min > 0 ? static_cast<double>(heat_max) /
                             static_cast<double>(heat_min)
                       : 0.0;
      std::printf("%12d %5d %10.1f %10.1f %12.1f %12.1f %10.2fx %20llu\n",
                  entry.participants, entry.days, entry.wall_s,
                  entry.pd_per_s, entry.cloud_req_per_s,
                  static_cast<double>(entry.peak_rss_bytes) / (1024.0 * 1024.0),
                  skew,
                  static_cast<unsigned long long>(entry.storage_digest));
    }
  }

  if (!json_path.empty()) {
    Json extra = Json::object();
    extra.set("participants", static_cast<std::uint64_t>(
                                  result.participants.size()));
    extra.set("days", config.days);
    extra.set("places_discovered",
              static_cast<std::uint64_t>(result.total_discovered()));
    extra.set("places_tagged",
              static_cast<std::uint64_t>(result.total_tagged()));
    extra.set("evaluable", static_cast<std::uint64_t>(result.total_evaluable()));
    extra.set("fraction_correct", result.fraction(DiscoveredOutcome::Correct));
    extra.set("fraction_merged", result.fraction(DiscoveredOutcome::Merged));
    extra.set("fraction_divided", result.fraction(DiscoveredOutcome::Divided));
    extra.set("ad_likes", static_cast<std::uint64_t>(result.total_likes()));
    extra.set("ad_dislikes",
              static_cast<std::uint64_t>(result.total_dislikes()));
    extra.set("fleet_avg_battery_h",
              battery_sum / static_cast<double>(result.participants.size()));
    Json scaling_arr = Json::array();
    for (const auto& entry : scaling) {
      Json e = Json::object();
      e.set("threads", entry.threads);
      e.set("wall_s", entry.wall_s);
      e.set("speedup_vs_1", scaling.front().wall_s / entry.wall_s);
      scaling_arr.push_back(std::move(e));
    }
    extra.set("thread_scaling", std::move(scaling_arr));
    extra.set("results_identical_across_threads", identical);
    // schema_version 3: per-configuration contention telemetry from the
    // sharded cloud storage.
    Json shard_sweep = Json::object();
    Json shard_runs = Json::array();
    for (const auto& entry : sweep) {
      Json e = Json::object();
      e.set("shards", entry.shards);
      e.set("threads", entry.threads);
      e.set("wall_s", entry.wall_s);
      e.set("shard_ops", entry.shard_ops);
      e.set("lock_wait_sum_us", entry.lock_wait_sum_us);
      e.set("lock_wait_max_us", entry.lock_wait_max_us);
      e.set("lock_wait_count", entry.lock_wait_count);
      shard_runs.push_back(std::move(e));
    }
    shard_sweep.set("runs", std::move(shard_runs));
    shard_sweep.set("identical_across_configs", identical);
    shard_sweep.set("storage_digest",
                    static_cast<std::uint64_t>(result.storage_digest));
    extra.set("shard_sweep", std::move(shard_sweep));
    // schema_version 4: recovery-equivalence digests and sync-reliability
    // counters under scripted cloud fault plans.
    Json fault_block = Json::object();
    Json fault_runs = Json::array();
    for (const auto& entry : fault_sweep) {
      Json e = Json::object();
      e.set("plan", entry.plan);
      e.set("wall_s", entry.wall_s);
      e.set("storage_digest", entry.digest);
      e.set("matches_baseline", entry.matches_baseline);
      e.set("sync_failures", entry.sync_failures);
      e.set("outbox_recovered", entry.outbox_recovered);
      e.set("outbox_evicted", entry.outbox_evicted);
      e.set("outbox_pending", entry.outbox_pending);
      e.set("breaker_opens", entry.breaker_opens);
      e.set("faults_injected", entry.faults_injected);
      fault_runs.push_back(std::move(e));
    }
    fault_block.set("runs", std::move(fault_runs));
    fault_block.set("baseline_digest",
                    static_cast<std::uint64_t>(result.storage_digest));
    fault_block.set("all_recovered", all_recovered);
    extra.set("fault_sweep", std::move(fault_block));
    // schema_version 9: the "chaos_sweep" block — device-lifecycle chaos
    // (crash/restart injection, privacy wipes, late joins) with determinism
    // digests per execution shape and checkpoint/restore distributions.
    {
      Json chaos_block = Json::object();
      chaos_block.set("plan", chaos_spec);
      Json chaos_runs = Json::array();
      for (const auto& entry : chaos_sweep) {
        Json e = Json::object();
        e.set("shards", entry.shards);
        e.set("threads", entry.threads);
        e.set("cache", entry.cache);
        e.set("runner", std::string(entry.runner));
        e.set("wall_s", entry.wall_s);
        e.set("storage_digest", entry.digest);
        e.set("restarts", entry.restarts);
        e.set("wipe_tombstones", entry.wipes);
        e.set("tombstone_rejections", entry.tombstone_rejections);
        e.set("outbox_enqueued", entry.enqueued);
        e.set("outbox_delivered", entry.delivered);
        e.set("outbox_recovered", entry.recovered);
        e.set("outbox_evicted", entry.evicted);
        e.set("outbox_dropped", entry.dropped);
        e.set("outbox_pending", entry.pending);
        chaos_runs.push_back(std::move(e));
      }
      chaos_block.set("runs", std::move(chaos_runs));
      chaos_block.set("identical_across_configs", chaos_identical);
      chaos_block.set("zero_records_lost", chaos_zero_lost);
      const auto hist_json = [](const HistSummary& h) {
        Json j = Json::object();
        j.set("count", h.count);
        j.set("mean", h.mean);
        j.set("p50", h.p50);
        j.set("p99", h.p99);
        j.set("max", h.max);
        return j;
      };
      chaos_block.set("checkpoint_bytes", hist_json(checkpoint_bytes));
      chaos_block.set("restore_wall_us", hist_json(restore_us));
      extra.set("chaos_sweep", std::move(chaos_block));
    }
    // schema_version 5: cache-on vs cache-off equivalence digests, the
    // request/recluster collapse, hit taxonomy, and the conditional-
    // transfer microbenchmarks.
    Json cache_block = Json::object();
    Json cache_runs = Json::array();
    for (const auto& entry : cache_sweep) {
      Json e = Json::object();
      e.set("cache", entry.cache);
      e.set("wall_s", entry.wall_s);
      e.set("storage_digest", entry.digest);
      e.set("cloud_requests", entry.cloud_requests);
      e.set("device_reclusters", entry.device_reclusters);
      e.set("cloud_reclusters", entry.cloud_reclusters);
      e.set("local_hits", entry.local_hits);
      e.set("cloud_hits", entry.cloud_hits);
      e.set("recomputes", entry.recomputes);
      e.set("misses", entry.misses);
      e.set("not_modified", entry.not_modified);
      e.set("bytes_saved", entry.bytes_saved);
      e.set("evictions", entry.evictions);
      cache_runs.push_back(std::move(e));
    }
    cache_block.set("runs", std::move(cache_runs));
    cache_block.set("identical_on_off", cache_equivalent);
    Json micro = Json::object();
    micro.set("gets", conditional.gets);
    micro.set("not_modified", conditional.not_modified);
    micro.set("bytes_saved", conditional.bytes_saved);
    micro.set("discover_posts", conditional.discover_posts);
    micro.set("discover_cloud_hits", conditional.discover_cloud_hits);
    micro.set("reclusters", conditional.reclusters);
    cache_block.set("conditional_microbench", std::move(micro));
    extra.set("cache_sweep", std::move(cache_block));
    // schema_version 6: the "scheduler_sweep" block — the run-generation
    // dispatch microbench and the before/after scheduler.run flame
    // self-time behind the batching PR's >=10x claim.
    Json sched_block = Json::object();
    Json sched_micro = Json::object();
    sched_micro.set("days", dispatch.days);
    sched_micro.set("reference_wall_s", dispatch.reference_wall_s);
    sched_micro.set("reference_samples", dispatch.reference_samples);
    sched_micro.set("reference_samples_per_s", reference_rate);
    sched_micro.set("batched_wall_s", dispatch.batched_wall_s);
    sched_micro.set("batched_samples", dispatch.batched_samples);
    sched_micro.set("batched_samples_per_s", batched_rate);
    sched_micro.set("speedup",
                    reference_rate > 0 ? batched_rate / reference_rate : 0.0);
    sched_micro.set("env_queries", dispatch.env_queries);
    sched_micro.set("env_hits", dispatch.env_hits);
    sched_block.set("dispatch_microbench", std::move(sched_micro));
    Json sched_study = Json::object();
    sched_study.set("participants",
                    static_cast<std::uint64_t>(config.participants));
    sched_study.set("days", config.days);
    sched_study.set("self_ms_total", study_sched_self_ms);
    sched_study.set("self_ms_per_participant_day", self_ms_per_day);
    sched_study.set("sampling_ms_per_participant_day", sampling_ms_per_day);
    sched_study.set("baseline_self_ms_per_participant_day",
                    kBaselineSchedulerSelfMsPerDay);
    sched_study.set("improvement_vs_baseline", sched_improvement);
    sched_block.set("study_flame", std::move(sched_study));
    extra.set("scheduler_sweep", std::move(sched_block));
    Json recluster = Json::object();
    recluster.set("passes", recluster_days);
    recluster.set("observations", static_cast<std::uint64_t>(stream.size()));
    recluster.set("full_rebuild_s", full_s);
    recluster.set("incremental_s", incremental_s);
    recluster.set("speedup",
                  incremental_s > 0 ? full_s / incremental_s : 0.0);
    recluster.set("identical", recluster_identical);
    extra.set("recluster", std::move(recluster));
    // schema_version 7: fleet throughput per sweep configuration plus the
    // process high-water marks — the capacity-planning view of the study.
    {
      const telemetry::ProcessStats proc = telemetry::read_process_stats();
      const double fleet_days =
          static_cast<double>(result.participants.size()) *
          static_cast<double>(config.days);
      Json throughput = Json::object();
      Json tp_runs = Json::array();
      for (const auto& entry : sweep) {
        Json e = Json::object();
        e.set("shards", entry.shards);
        e.set("threads", entry.threads);
        e.set("participant_days_per_s",
              entry.wall_s > 0 ? fleet_days / entry.wall_s : 0.0);
        tp_runs.push_back(std::move(e));
      }
      throughput.set("runs", std::move(tp_runs));
      throughput.set("peak_rss_bytes", proc.peak_rss_bytes);
      throughput.set("cpu_seconds", proc.cpu_seconds);
      extra.set("throughput", std::move(throughput));
    }
    // schema_version 8: the "population_sweep" block — the streaming
    // runner's scale ladder (throughput, memory high-water, cloud request
    // rate, per-shard heat at each population decade).
    {
      Json pop_block = Json::object();
      Json pop_runs = Json::array();
      for (const auto& entry : population_sweep) {
        Json e = Json::object();
        e.set("participants", entry.participants);
        e.set("days", entry.days);
        e.set("wall_s", entry.wall_s);
        e.set("participant_days_per_s", entry.pd_per_s);
        e.set("cloud_requests", entry.cloud_requests);
        e.set("cloud_requests_per_s", entry.cloud_req_per_s);
        e.set("peak_rss_bytes", entry.peak_rss_bytes);
        e.set("storage_digest", entry.storage_digest);
        Json heat = Json::array();
        for (const std::uint64_t h : entry.shard_heat)
          heat.push_back(Json(h));
        e.set("shard_heat", std::move(heat));
        pop_runs.push_back(std::move(e));
      }
      pop_block.set("runs", std::move(pop_runs));
      pop_block.set("runner", std::string("streaming"));
      extra.set("population_sweep", std::move(pop_block));
    }
    // Telemetry in the dump is from the conditional-transfer microbench
    // (the last section to reset the registry); the sweep blocks above
    // carry their own per-run counters. The "timeseries" block
    // write_bench_json embeds is the recorder ring from the most recent
    // study run — one point per sim-day.
    const telemetry::RunMeta meta{config.seed, thread_counts.back(),
                                  config.days};
    if (!telemetry::write_bench_json(json_path, "deployment_study",
                                     std::move(extra), meta))
      return 1;
  }
  return 0;
}
