// Microbenchmarks (google-benchmark) for the hot paths of the middleware:
// GCA clustering throughput, Tanimoto matching, the JSON wire format, REST
// routing, the world's spatial queries, and the sensing dispatch loop
// (batched scheduler vs the retired heap reference, with allocation and
// registry-lookup instrumentation). These bound the cost of the cloud's
// offloaded computations and of each on-device sensing tick.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "algorithms/gca.hpp"
#include "algorithms/signature.hpp"
#include "core/codec.hpp"
#include "energy/meter.hpp"
#include "net/router.hpp"
#include "sensing/device.hpp"
#include "sensing/scheduler.hpp"
#include "sensing/scheduler_reference.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "world/world.hpp"

// Counting allocator: every global operator new in this binary bumps a
// relaxed counter, so benches can assert "zero heap allocations per sample"
// as a measured fact instead of a code-review claim.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pmware;
using world::CellId;

CellId cell(std::uint32_t cid) {
  return CellId{404, 10, 1, cid, world::Radio::Gsm2G};
}

/// Synthetic day pattern: home oscillation, commute chain, work oscillation.
std::vector<algorithms::CellObservation> make_log(int days_n, Rng& rng) {
  std::vector<algorithms::CellObservation> log;
  SimTime t = 0;
  auto dwell = [&](std::initializer_list<std::uint32_t> cells, SimDuration d) {
    std::vector<std::uint32_t> v(cells);
    for (SimDuration e = 0; e < d; e += 60, t += 60)
      log.push_back({t, cell(v[rng.index(v.size())])});
  };
  auto travel = [&](std::initializer_list<std::uint32_t> chain) {
    for (std::uint32_t c : chain) {
      log.push_back({t, cell(c)});
      t += 60;
    }
  };
  for (int day = 0; day < days_n; ++day) {
    dwell({1, 2, 3}, hours(9));
    travel({20, 21, 22, 23});
    dwell({10, 11}, hours(8));
    travel({23, 22, 21, 20});
    dwell({1, 2, 3}, hours(6));
  }
  return log;
}

void BM_RunGca(benchmark::State& state) {
  Rng rng(1);
  const auto log = make_log(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::run_gca(log));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(log.size()));
}
BENCHMARK(BM_RunGca)->Arg(1)->Arg(7)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_Tanimoto(benchmark::State& state) {
  Rng rng(2);
  std::set<world::Bssid> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.insert(static_cast<world::Bssid>(rng.uniform_int(0, 1 << 20)));
    b.insert(static_cast<world::Bssid>(rng.uniform_int(0, 1 << 20)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::tanimoto(a, b));
  }
}
BENCHMARK(BM_Tanimoto)->Arg(4)->Arg(32)->Arg(256);

void BM_JsonProfileRoundTrip(benchmark::State& state) {
  core::MobilityProfile profile;
  profile.user = 1;
  profile.day = 3;
  for (int i = 0; i < 12; ++i)
    profile.places.push_back({static_cast<core::PlaceUid>(i + 1),
                              hours(i), hours(i) + minutes(45)});
  for (auto _ : state) {
    const std::string wire = core::to_json(profile).dump();
    benchmark::DoNotOptimize(core::profile_from_json(Json::parse(wire)));
  }
}
BENCHMARK(BM_JsonProfileRoundTrip);

void BM_RouterDispatch(benchmark::State& state) {
  net::Router router;
  for (int i = 0; i < 20; ++i) {
    router.add_route(net::Method::Get,
                     "/api/resource" + std::to_string(i) + "/:id",
                     [](const net::HttpRequest&, const net::PathParams&) {
                       return net::HttpResponse::json(Json::object());
                     });
  }
  net::HttpRequest request;
  request.method = net::Method::Get;
  request.path = "/api/resource19/42";
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.handle(request));
  }
}
BENCHMARK(BM_RouterDispatch);

void BM_WorldHearableCells(benchmark::State& state) {
  Rng rng(3);
  world::WorldConfig config;
  const auto world = world::generate_world(config, rng);
  const geo::LatLng pos = world->place(5).center;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->hearable_cells(pos));
  }
}
BENCHMARK(BM_WorldHearableCells);

void BM_WorldVisibleAps(benchmark::State& state) {
  Rng rng(3);
  world::WorldConfig config;
  const auto world = world::generate_world(config, rng);
  const geo::LatLng pos = world->place(5).center;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->visible_aps(pos));
  }
}
BENCHMARK(BM_WorldVisibleAps);

// --- Sensing dispatch: batched scheduler vs retired heap reference ---

/// One simulated day at the study's default cadence (GSM + accelerometer at
/// 60 s).
template <typename Sched>
void drive_day(Sched& s, SimTime day) {
  const SimTime begin = day * hours(24);
  s.run(TimeWindow{begin, begin + hours(24)});
}

void BM_SchedulerDispatchBatched(benchmark::State& state) {
  telemetry::registry().reset();
  energy::EnergyMeter meter;
  sensing::SamplingScheduler s(&meter);
  std::uint64_t samples = 0;
  for (std::size_t i = 0; i < energy::kInterfaceCount; ++i) {
    s.set_batch_callback(static_cast<energy::Interface>(i),
                         [&samples](std::span<const SimTime> run) {
                           samples += run.size();
                           return run.size();
                         });
  }
  s.set_period(energy::Interface::Gsm, 60);
  s.set_period(energy::Interface::Accelerometer, 60);

  // Warmup: size scratch buffers, resolve counters, and settle the global
  // tracer's record vector past its next doubling (run() folds a constant
  // few scheduler.sampling.* records per window; the equality assertion
  // below must not catch a capacity growth reallocation).
  telemetry::tracer().reset();
  SimTime day = 0;
  for (int i = 0; i < 8; ++i) drive_day(s, day++);

  // Zero-per-sample proof: heap allocations over a dispatch window must not
  // scale with the sample count — a 1-day and a 2-day window must allocate
  // the same (window-constant) amount, and the registry must never be hit.
  const auto allocs_over = [&](int n_days) {
    const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
    const SimTime begin = day * hours(24);
    s.run(TimeWindow{begin, begin + n_days * hours(24)});
    day += n_days;
    return g_heap_allocs.load(std::memory_order_relaxed) - a0;
  };
  const std::uint64_t lookups_before = telemetry::registry().lookup_count();
  const std::uint64_t allocs_one_day = allocs_over(1);
  const std::uint64_t allocs_two_days = allocs_over(2);
  const std::uint64_t hot_lookups =
      telemetry::registry().lookup_count() - lookups_before;
  if (allocs_two_days != allocs_one_day)
    state.SkipWithError("per-sample heap allocations detected in hot loop");
  if (hot_lookups != 0)
    state.SkipWithError("per-sample telemetry registry lookups detected");

  std::uint64_t hot_samples = 0;
  std::uint64_t hot_allocs = 0;
  for (auto _ : state) {
    const std::uint64_t s0 = samples;
    const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
    drive_day(s, day++);
    hot_samples += samples - s0;
    hot_allocs += g_heap_allocs.load(std::memory_order_relaxed) - a0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hot_samples));
  state.counters["allocs_per_sample"] = benchmark::Counter(
      static_cast<double>(hot_allocs) / static_cast<double>(hot_samples));
  state.counters["registry_lookups_per_sample"] = benchmark::Counter(0.0);
}
BENCHMARK(BM_SchedulerDispatchBatched)->Unit(benchmark::kMillisecond);

void BM_SchedulerDispatchReference(benchmark::State& state) {
  telemetry::registry().reset();
  energy::EnergyMeter meter;
  sensing::ReferenceScheduler s(&meter);
  std::uint64_t samples = 0;
  for (std::size_t i = 0; i < energy::kInterfaceCount; ++i) {
    s.set_callback(static_cast<energy::Interface>(i),
                   [&samples](SimTime) { ++samples; });
  }
  s.set_period(energy::Interface::Gsm, 60);
  s.set_period(energy::Interface::Accelerometer, 60);

  SimTime day = 0;
  drive_day(s, day++);  // warmup, for symmetry

  std::uint64_t hot_samples = 0;
  std::uint64_t hot_allocs = 0;
  const std::uint64_t lookups_before = telemetry::registry().lookup_count();
  for (auto _ : state) {
    const std::uint64_t s0 = samples;
    const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
    drive_day(s, day++);
    hot_samples += samples - s0;
    hot_allocs += g_heap_allocs.load(std::memory_order_relaxed) - a0;
  }
  const std::uint64_t hot_lookups =
      telemetry::registry().lookup_count() - lookups_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(hot_samples));
  state.counters["allocs_per_sample"] = benchmark::Counter(
      static_cast<double>(hot_allocs) / static_cast<double>(hot_samples));
  state.counters["registry_lookups_per_sample"] = benchmark::Counter(
      static_cast<double>(hot_lookups) / static_cast<double>(hot_samples));
}
BENCHMARK(BM_SchedulerDispatchReference)->Unit(benchmark::kMillisecond);

// --- Device sampling: position-keyed world-environment cache on vs off ---

/// read_gsm_into on a dwelling participant; range(0) toggles
/// DeviceConfig::reuse_world_env. The cached variant asserts a zero-alloc
/// steady state.
void BM_DeviceReadGsm(benchmark::State& state) {
  const bool reuse_env = state.range(0) != 0;
  Rng world_rng(3);
  world::WorldConfig world_config;
  const auto world = world::generate_world(world_config, world_rng);
  const geo::LatLng home = world->place(5).center;
  sensing::PositionOracle oracle;
  oracle.position = [home](SimTime) { return home; };
  oracle.activity = [](SimTime) { return mobility::Activity::Still; };
  oracle.indoors = [](SimTime) { return true; };
  sensing::DeviceConfig device_config;
  device_config.reuse_world_env = reuse_env;
  sensing::Device device(world, oracle, device_config, Rng(7));

  sensing::GsmReading scratch;
  SimTime t = 0;
  for (int k = 0; k < 16; ++k) device.read_gsm_into(t += 60, scratch);

  std::uint64_t hot_allocs = 0;
  for (auto _ : state) {
    const std::uint64_t a0 = g_heap_allocs.load(std::memory_order_relaxed);
    device.read_gsm_into(t += 60, scratch);
    hot_allocs += g_heap_allocs.load(std::memory_order_relaxed) - a0;
    benchmark::DoNotOptimize(scratch);
  }
  if (reuse_env && hot_allocs != 0)
    state.SkipWithError("cached read_gsm_into allocated in steady state");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_sample"] =
      benchmark::Counter(static_cast<double>(hot_allocs) /
                         static_cast<double>(state.iterations()));
  state.counters["env_hit_rate"] = benchmark::Counter(
      device.env_queries() == 0
          ? 0.0
          : static_cast<double>(device.env_hits()) /
                static_cast<double>(device.env_queries()));
}
BENCHMARK(BM_DeviceReadGsm)->Arg(1)->Arg(0);

// --- Telemetry recording: pre-resolved handles vs registry lookups ---

/// One striped-counter inc through a pre-resolved reference — the steady
/// state of every MetricHandle call site.
void BM_CounterIncHandle(benchmark::State& state) {
  telemetry::registry().reset();
  telemetry::Counter& c =
      telemetry::registry().counter("bench_handle_total", {}, "bench");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncHandle);

/// The pre-handle idiom: name + labels looked up in the registry map (under
/// the registry mutex, building label strings) on every inc.
void BM_CounterIncRegistryLookup(benchmark::State& state) {
  telemetry::registry().reset();
  for (auto _ : state) {
    telemetry::registry()
        .counter("bench_lookup_total", {{"instance", "b0"}}, "bench")
        .inc();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncRegistryLookup);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::registry().reset();
  telemetry::HistogramMetric& h = telemetry::registry().histogram(
      "bench_observe", {}, 0, 4096, 16, "bench");
  double x = 0;
  for (auto _ : state) h.observe(x += 1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserve);

// --- --assert-telemetry-budget: the ci.sh gate ------------------------------
//
// Hand-rolled (not google-benchmark) so it can return a process exit code:
// 8 threads hammer the same fleet-shared instruments and the gate asserts
// (a) totals are exact — no lost increments under contention, (b) the
// pre-resolved handle path beats the per-op registry-lookup path, and
// (c) absolute ns/op budgets with ~10x headroom over measured values, so
// the gate catches regressions (a mutex on the inc path, a lookup snuck
// into a handle) without flaking on a loaded CI container.

/// Wall ns/op of `op(thread_index, op_index)` across kThreads * ops_per_thread
/// calls, all threads released together.
template <typename Op>
double threaded_ns_per_op(int threads, std::uint64_t ops_per_thread, Op op) {
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&go, &op, t, ops_per_thread] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) op(t, i);
    });
  }
  const auto begin = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  return static_cast<double>(wall) /
         static_cast<double>(static_cast<std::uint64_t>(threads) *
                             ops_per_thread);
}

int run_telemetry_budget_selfcheck() {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOps = 100000;
  // Container-safe budgets: measured cold-cache debug-build numbers are
  // well under a tenth of these.
  constexpr double kCounterBudgetNs = 1000;
  constexpr double kObserveBudgetNs = 5000;
  auto& reg = telemetry::registry();
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };

  std::printf("telemetry budget selfcheck: %d threads x %llu ops\n", kThreads,
              static_cast<unsigned long long>(kOps));

  reg.reset();
  telemetry::Counter& shared =
      reg.counter("budget_handle_total", {}, "selfcheck");
  const double handle_ns = threaded_ns_per_op(
      kThreads, kOps, [&shared](int, std::uint64_t) { shared.inc(); });
  std::printf("  counter inc, pre-resolved handle: %8.1f ns/op\n", handle_ns);
  check(shared.value() == static_cast<std::uint64_t>(kThreads) * kOps,
        "striped counter total exact under 8-thread contention");

  const double lookup_ns =
      threaded_ns_per_op(kThreads, kOps, [&reg](int, std::uint64_t) {
        reg.counter("budget_lookup_total", {{"instance", "b0"}}, "selfcheck")
            .inc();
      });
  std::printf("  counter inc, registry lookup:     %8.1f ns/op\n", lookup_ns);

  telemetry::HistogramMetric& hist =
      reg.histogram("budget_observe", {}, 0, 4096, 16, "selfcheck");
  const double observe_ns = threaded_ns_per_op(
      kThreads, kOps, [&hist](int t, std::uint64_t i) {
        hist.observe(static_cast<double>((i + static_cast<std::uint64_t>(t)) %
                                         4096));
      });
  std::printf("  histogram observe, sharded:       %8.1f ns/op\n", observe_ns);
  const auto snap = hist.snapshot();
  check(snap.stats.count() == static_cast<std::uint64_t>(kThreads) * kOps &&
            snap.buckets.total() == snap.stats.count(),
        "histogram shards merge coherently (bucket total == stats count)");

  check(handle_ns < lookup_ns,
        "lock-free handle path faster than locked registry-lookup path");
  check(handle_ns <= kCounterBudgetNs, "counter-inc within ns/op budget");
  check(observe_ns <= kObserveBudgetNs,
        "histogram-observe within ns/op budget");

  std::printf("telemetry budget selfcheck: %s\n",
              failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-telemetry-budget") == 0)
      return run_telemetry_budget_selfcheck();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
