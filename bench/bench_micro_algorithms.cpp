// Microbenchmarks (google-benchmark) for the hot paths of the middleware:
// GCA clustering throughput, Tanimoto matching, the JSON wire format, REST
// routing, and the world's spatial queries. These bound the cost of the
// cloud's offloaded computations and of each on-device sensing tick.
#include <benchmark/benchmark.h>

#include "algorithms/gca.hpp"
#include "algorithms/signature.hpp"
#include "core/codec.hpp"
#include "net/router.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "world/world.hpp"

namespace {

using namespace pmware;
using world::CellId;

CellId cell(std::uint32_t cid) {
  return CellId{404, 10, 1, cid, world::Radio::Gsm2G};
}

/// Synthetic day pattern: home oscillation, commute chain, work oscillation.
std::vector<algorithms::CellObservation> make_log(int days_n, Rng& rng) {
  std::vector<algorithms::CellObservation> log;
  SimTime t = 0;
  auto dwell = [&](std::initializer_list<std::uint32_t> cells, SimDuration d) {
    std::vector<std::uint32_t> v(cells);
    for (SimDuration e = 0; e < d; e += 60, t += 60)
      log.push_back({t, cell(v[rng.index(v.size())])});
  };
  auto travel = [&](std::initializer_list<std::uint32_t> chain) {
    for (std::uint32_t c : chain) {
      log.push_back({t, cell(c)});
      t += 60;
    }
  };
  for (int day = 0; day < days_n; ++day) {
    dwell({1, 2, 3}, hours(9));
    travel({20, 21, 22, 23});
    dwell({10, 11}, hours(8));
    travel({23, 22, 21, 20});
    dwell({1, 2, 3}, hours(6));
  }
  return log;
}

void BM_RunGca(benchmark::State& state) {
  Rng rng(1);
  const auto log = make_log(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::run_gca(log));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(log.size()));
}
BENCHMARK(BM_RunGca)->Arg(1)->Arg(7)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_Tanimoto(benchmark::State& state) {
  Rng rng(2);
  std::set<world::Bssid> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.insert(static_cast<world::Bssid>(rng.uniform_int(0, 1 << 20)));
    b.insert(static_cast<world::Bssid>(rng.uniform_int(0, 1 << 20)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithms::tanimoto(a, b));
  }
}
BENCHMARK(BM_Tanimoto)->Arg(4)->Arg(32)->Arg(256);

void BM_JsonProfileRoundTrip(benchmark::State& state) {
  core::MobilityProfile profile;
  profile.user = 1;
  profile.day = 3;
  for (int i = 0; i < 12; ++i)
    profile.places.push_back({static_cast<core::PlaceUid>(i + 1),
                              hours(i), hours(i) + minutes(45)});
  for (auto _ : state) {
    const std::string wire = core::to_json(profile).dump();
    benchmark::DoNotOptimize(core::profile_from_json(Json::parse(wire)));
  }
}
BENCHMARK(BM_JsonProfileRoundTrip);

void BM_RouterDispatch(benchmark::State& state) {
  net::Router router;
  for (int i = 0; i < 20; ++i) {
    router.add_route(net::Method::Get,
                     "/api/resource" + std::to_string(i) + "/:id",
                     [](const net::HttpRequest&, const net::PathParams&) {
                       return net::HttpResponse::json(Json::object());
                     });
  }
  net::HttpRequest request;
  request.method = net::Method::Get;
  request.path = "/api/resource19/42";
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.handle(request));
  }
}
BENCHMARK(BM_RouterDispatch);

void BM_WorldHearableCells(benchmark::State& state) {
  Rng rng(3);
  world::WorldConfig config;
  const auto world = world::generate_world(config, rng);
  const geo::LatLng pos = world->place(5).center;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->hearable_cells(pos));
  }
}
BENCHMARK(BM_WorldHearableCells);

void BM_WorldVisibleAps(benchmark::State& state) {
  Rng rng(3);
  world::WorldConfig config;
  const auto world = world::generate_world(config, rng);
  const geo::LatLng pos = world->place(5).center;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->visible_aps(pos));
  }
}
BENCHMARK(BM_WorldVisibleAps);

}  // namespace

BENCHMARK_MAIN();
