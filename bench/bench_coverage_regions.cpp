// Experiment A3 — regional WiFi-coverage customization (paper §1,
// limitation 4): "a mobile user is under WiFi coverage for nearly 60% of the
// day in India opposed to more than 90% in a developed country such as
// Switzerland". The same study runs under both region profiles; accuracy
// should track coverage.
#include <cstdio>

#include "study/deployment.hpp"
#include "util/logging.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

using namespace pmware;
using algorithms::DiscoveredOutcome;

namespace {

struct RegionRow {
  std::string name;
  double coverage;
  study::StudyResult result;
};

RegionRow run_region(const world::RegionProfile& region) {
  study::StudyConfig config;
  config.participants = 8;
  config.days = 7;
  config.world.region = region;
  study::DeploymentStudy study(config);
  RegionRow row{region.name, region.wifi_place_coverage, study.run()};
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "coverage_regions");
  set_log_level(LogLevel::Error);
  telemetry::apply_log_level_flag(argc, argv);
  std::printf("=== A3: region profiles — WiFi coverage vs discovery accuracy "
              "(8 participants x 7 days) ===\n\n");
  std::printf("%-14s %9s | %8s %8s %8s | %8s %8s\n", "region", "coverage",
              "correct", "merged", "divided", "places", "tagged");
  std::printf("%s\n", std::string(84, '-').c_str());

  const RegionRow india = run_region(world::RegionProfile::india());
  const RegionRow swiss = run_region(world::RegionProfile::switzerland());
  for (const RegionRow* row : {&india, &swiss}) {
    std::printf("%-14s %8.0f%% | %7.1f%% %7.1f%% %7.1f%% | %8zu %8zu\n",
                row->name.c_str(), row->coverage * 100,
                100 * row->result.fraction(DiscoveredOutcome::Correct),
                100 * row->result.fraction(DiscoveredOutcome::Merged),
                100 * row->result.fraction(DiscoveredOutcome::Divided),
                row->result.total_discovered(), row->result.total_tagged());
  }

  std::printf(
      "\nshape check: with ~90%% WiFi coverage (Switzerland) more places get\n"
      "a WiFi identity, so fewer adjacent places stay merged than in the\n"
      "~60%% coverage (India) deployment — the paper's argument for\n"
      "per-geography customization inside the middleware.\n");
  if (!json_path.empty() &&
      !telemetry::write_bench_json(json_path, "coverage_regions",
                                   Json::object(), {0, 1, 7}))
    return 1;
  return 0;
}
