// Experiment A5 — sensitivity of GCA place discovery to its two main knobs
// (DESIGN.md design-choice ablation):
//
//   1. the GSM sampling period (the paper samples every minute; coarser
//      sampling saves energy but starves the movement graph of oscillation
//      evidence), and
//   2. the oscillation-evidence threshold `min_edge_weight` (how many
//      A->B->A bounces an edge needs before two cells merge into a place).
//
// Runs GSM-only so the WiFi pipeline cannot mask GCA behaviour.
#include <algorithm>
#include <cstdio>

#include "algorithms/evaluate.hpp"
#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

using namespace pmware;
using algorithms::DiscoveredOutcome;

namespace {

constexpr int kParticipants = 4;
constexpr int kDays = 7;

struct Row {
  std::size_t correct = 0, merged = 0, divided = 0, missed_truth = 0;
  std::size_t places = 0;
  double sensing_j = 0;
};

Row run_config(SimDuration gsm_period, int min_edge_weight) {
  Rng rng(20141208);
  Rng world_rng = rng.fork(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng = rng.fork(2);
  const auto participants =
      mobility::make_participants(*world, kParticipants, prng);

  Row row;
  for (const auto& participant : participants) {
    Rng trng = rng.fork(100 + participant.id);
    mobility::ScheduleConfig sc;
    sc.days = kDays;
    const mobility::Trace trace =
        mobility::build_trace(*world, participant, sc, trng);

    Rng p_rng(700 + participant.id);
    auto device = std::make_unique<sensing::Device>(
        world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
        p_rng.fork(1));
    core::PmsConfig config;
    config.inference.wifi_enabled = false;
    config.inference.gsm_period = gsm_period;
    config.inference.gca.min_edge_weight = min_edge_weight;
    // Keep consecutive samples adjacent in the movement graph even when the
    // sampling period exceeds the default 4-minute gap.
    config.inference.gca.max_transition_gap =
        std::max(minutes(4), 2 * gsm_period);
    core::PmwareMobileService pms(std::move(device), config, nullptr,
                                  p_rng.fork(2));
    core::PlaceAlertRequest request;
    request.app = "ablation";
    request.granularity = core::Granularity::Building;
    pms.apps().register_place_alerts(request);
    pms.run(TimeWindow{0, days(kDays)});
    pms.shutdown(days(kDays));

    std::vector<algorithms::TruthVisit> truth;
    for (const auto& v : trace.significant_visits(minutes(10)))
      truth.push_back({v.place, v.window});
    std::vector<algorithms::ReportedVisit> reported;
    std::set<core::PlaceUid> distinct;
    for (const auto& v : pms.inference().visit_log()) {
      reported.push_back({static_cast<std::size_t>(v.uid), v.window});
      distinct.insert(v.uid);
    }
    const auto disc_eval = algorithms::evaluate_discovered(truth, reported);
    const auto truth_eval = algorithms::evaluate_places(truth, reported);
    row.correct += disc_eval.count(DiscoveredOutcome::Correct);
    row.merged += disc_eval.count(DiscoveredOutcome::Merged);
    row.divided += disc_eval.count(DiscoveredOutcome::Divided);
    row.missed_truth += truth_eval.count(algorithms::PlaceOutcome::Missed);
    row.places += distinct.size();
    row.sensing_j += pms.meter().sensing_j();
  }
  return row;
}

void print_row(const char* label, const Row& row) {
  std::printf("%-16s | %7zu %7zu %7zu | %7zu %7zu | %9.0f\n", label,
              row.correct, row.merged, row.divided, row.missed_truth,
              row.places, row.sensing_j);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "ablation_gca_params");
  set_log_level(LogLevel::Error);
  telemetry::apply_log_level_flag(argc, argv);
  std::printf("=== A5: GCA sensitivity, GSM-only (%d participants x %d days) "
              "===\n\n",
              kParticipants, kDays);
  std::printf("%-16s | %7s %7s %7s | %7s %7s | %9s\n", "config", "correct",
              "merged", "divided", "missed", "places", "sense J");
  std::printf("%s\n", std::string(80, '-').c_str());

  std::printf("-- GSM sampling period (min_edge_weight = 3) --\n");
  for (SimDuration period : {seconds(30), minutes(1), minutes(2), minutes(5)}) {
    char label[32];
    std::snprintf(label, sizeof(label), "period %llds",
                  static_cast<long long>(period));
    print_row(label, run_config(period, 3));
  }

  std::printf("\n-- oscillation threshold (period = 60s) --\n");
  for (int weight : {2, 3, 5, 8}) {
    char label[32];
    std::snprintf(label, sizeof(label), "min bounces %d", weight);
    print_row(label, run_config(minutes(1), weight));
  }

  std::printf(
      "\nshape check: coarser sampling starves the movement graph of\n"
      "oscillation evidence, so clusters fragment (divided rises) and some\n"
      "places go missing; a stricter bounce threshold does the same, while\n"
      "a looser one risks over-merging. The paper's 1-minute operating\n"
      "point buys clean clusters for ~2x the energy of 2-minute sampling.\n");
  if (!json_path.empty() &&
      !telemetry::write_bench_json(json_path, "ablation_gca_params",
                                   Json::object(), {0, 1, kDays}))
    return 1;
  return 0;
}
