// Experiment E2 — Figure 2 of the paper: characterization of place-aware
// applications by required place granularity (room / building / area), and
// what that class costs once PMWare's triggered sensing serves it.
//
// For each application class the harness runs one simulated day with a
// single connected app of that class and reports the sensing plan the
// inference engine actually chose (sample counts per interface), the energy
// spent, and the implied battery life.
#include <cstdio>

#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

using namespace pmware;
using energy::Interface;

namespace {

struct AppClass {
  const char* name;
  const char* examples;
  core::Granularity granularity;
  core::RouteAccuracy route = core::RouteAccuracy::Off;
};

const AppClass kClasses[] = {
    {"contextual ads", "PlaceADs, Groupon", core::Granularity::Area},
    {"geo reminders", "Place-Its, To-Do", core::Granularity::Building},
    {"life logging", "Moves, PlaceMap", core::Granularity::Building},
    {"activity tracking", "fitness trackers", core::Granularity::Room},
    {"ride sharing / routes", "traffic estimation", core::Granularity::Area,
     core::RouteAccuracy::High},
    {"pollution exposure", "PEIR", core::Granularity::Building,
     core::RouteAccuracy::Low},
};

struct RunResult {
  std::size_t samples[energy::kInterfaceCount] = {};
  double avg_power_mw = 0;
  double battery_h = 0;
};

RunResult run_class(const AppClass& app_class) {
  Rng rng(20141208);
  Rng world_rng = rng.fork(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng = rng.fork(2);
  auto participants = mobility::make_participants(*world, 1, prng);
  Rng trng = rng.fork(3);
  mobility::ScheduleConfig sc;
  sc.days = 1;
  const mobility::Trace trace =
      mobility::build_trace(*world, participants[0], sc, trng);

  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(4));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{}, nullptr,
                                rng.fork(5));
  core::PlaceAlertRequest request;
  request.app = app_class.name;
  request.granularity = app_class.granularity;
  pms.apps().register_place_alerts(request);
  if (app_class.route != core::RouteAccuracy::Off) {
    core::RouteTrackingRequest route;
    route.app = app_class.name;
    route.accuracy = app_class.route;
    pms.apps().register_route_tracking(route);
  }
  pms.run(TimeWindow{0, days(1)});

  RunResult result;
  for (std::size_t i = 0; i < energy::kInterfaceCount; ++i)
    result.samples[i] = pms.meter().sample_count(static_cast<Interface>(i));
  result.avg_power_mw = pms.meter().average_power_w(days(1)) * 1000;
  result.battery_h = pms.meter().implied_battery_duration_s(days(1)) / 3600.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "fig2_characterization");
  set_log_level(LogLevel::Error);
  telemetry::apply_log_level_flag(argc, argv);
  std::printf("=== Figure 2: place-aware application classes and the sensing "
              "PMWare chooses ===\n\n");
  std::printf("%-24s %-10s %-6s | %6s %6s %6s %6s | %9s %9s\n", "app class",
              "granular.", "route", "gsm", "accel", "wifi", "gps", "avg mW",
              "battery h");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const AppClass& app_class : kClasses) {
    const RunResult result = run_class(app_class);
    std::printf("%-24s %-10s %-6s | %6zu %6zu %6zu %6zu | %9.2f %9.1f\n",
                app_class.name, core::to_string(app_class.granularity),
                app_class.route == core::RouteAccuracy::Off
                    ? "-"
                    : (app_class.route == core::RouteAccuracy::Low ? "low"
                                                                   : "high"),
                result.samples[0], result.samples[3], result.samples[1],
                result.samples[2], result.avg_power_mw, result.battery_h);
  }
  std::printf(
      "\nshape check: finer granularity / route accuracy => more expensive\n"
      "interfaces are sampled, monotonically lower battery life.\n");
  if (!json_path.empty() &&
      !telemetry::write_bench_json(json_path, "fig2_characterization",
                                   Json::object(), {0, 1, 1}))
    return 1;
  return 0;
}
