// Experiment A4 — the analytics & prediction engine (paper §2.3.2). The
// paper lists three example queries; this harness runs an 8-week simulation,
// lets the PMS sync mobility profiles to the cloud, and then scores the
// cloud's answers against ground truth:
//
//   Q1 "what time does the user typically reach home in the evening?"
//   Q2 "when will the next visit to place A be?"
//   Q3 "how frequently does the user visit shopping malls?"
#include <cstdio>

#include <cmath>

#include "cloud/cloud_instance.hpp"
#include "core/pms.hpp"
#include "mobility/participant.hpp"
#include "mobility/schedule.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"

using namespace pmware;

namespace {

constexpr int kDays = 56;  // 8 weeks of history

/// Ground-truth evening home arrivals (time-of-day of the arrival of each
/// home stay that starts after 15:00).
std::vector<double> truth_home_arrivals(const mobility::Trace& trace,
                                        world::PlaceId home) {
  std::vector<double> out;
  for (const auto& v : trace.visits()) {
    if (v.place != home) continue;
    const SimDuration tod = time_of_day(v.window.begin);
    if (tod >= hours(15)) out.push_back(static_cast<double>(tod));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "prediction");
  set_log_level(LogLevel::Error);
  telemetry::apply_log_level_flag(argc, argv);
  Rng rng(20141208);
  Rng world_rng = rng.fork(1);
  world::WorldConfig wc;
  auto world = world::generate_world(wc, world_rng);
  Rng prng = rng.fork(2);
  const auto participants = mobility::make_participants(*world, 1, prng);
  const mobility::Participant& user = participants[0];
  Rng trng = rng.fork(3);
  mobility::ScheduleConfig sc;
  sc.days = kDays;
  const mobility::Trace trace = mobility::build_trace(*world, user, sc, trng);

  cloud::GeoLocationService geoloc(world->cell_location_db());
  geoloc.set_ap_db(world->ap_location_db());
  cloud::CloudInstance cloud(cloud::CloudConfig{}, std::move(geoloc),
                             rng.fork(4));

  auto device = std::make_unique<sensing::Device>(
      world, sensing::oracle_from_trace(trace), sensing::DeviceConfig{},
      rng.fork(5));
  auto client = std::make_unique<net::RestClient>(
      &cloud.router(), net::NetworkConditions{0.01, 1}, rng.fork(6));
  core::PmwareMobileService pms(std::move(device), core::PmsConfig{},
                                std::move(client), rng.fork(7));
  core::PlaceAlertRequest request;
  request.app = "bench";
  request.granularity = core::Granularity::Building;
  pms.apps().register_place_alerts(request);
  pms.register_with_cloud(0);
  pms.run(TimeWindow{0, days(kDays)});
  pms.shutdown(days(kDays));

  std::printf("=== A4: analytics & prediction engine over %d days of synced "
              "profiles ===\n\n",
              kDays);

  // Identify the discovered "home": the place occupied at 03:00 most often.
  std::map<core::PlaceUid, int> night_votes;
  for (const auto& v : pms.inference().visit_log())
    for (int day = 0; day < kDays; ++day)
      if (v.window.contains(start_of_day(day) + hours(3))) ++night_votes[v.uid];
  core::PlaceUid home_uid = 0;
  int best_votes = 0;
  for (const auto& [uid, votes] : night_votes)
    if (votes > best_votes) home_uid = uid, best_votes = votes;
  const world::DeviceId uid = *pms.user_id();

  // --- Q1: typical evening home arrival.
  const auto predicted_tod =
      cloud.analytics().typical_arrival_tod(uid, home_uid);
  const auto truth_arrivals = truth_home_arrivals(trace, user.home);
  double truth_mean = mean_of(truth_arrivals);
  std::printf("Q1  typical evening home arrival\n");
  if (predicted_tod) {
    std::printf("    predicted %s   truth mean %s   error %s\n",
                format_duration(*predicted_tod).c_str(),
                format_duration(static_cast<SimDuration>(truth_mean)).c_str(),
                format_duration(std::llabs(*predicted_tod -
                                           static_cast<SimDuration>(truth_mean)))
                    .c_str());
  } else {
    std::printf("    no prediction (insufficient history)\n");
  }

  // --- Q2: next-visit prediction for home, asked every noon of the final
  // two weeks; a hit = ground truth has a home arrival within 90 min of the
  // prediction.
  int asked = 0, answered = 0, hits = 0;
  RunningStats error_minutes;
  for (int day = kDays - 14; day < kDays - 1; ++day) {
    const SimTime now = start_of_day(day) + hours(12);
    const auto predicted = cloud.analytics().predict_next_visit(uid, home_uid, now);
    ++asked;
    if (!predicted) continue;
    ++answered;
    // Nearest true home arrival after `now`.
    std::optional<SimTime> nearest;
    for (const auto& v : trace.visits()) {
      if (v.place != user.home || v.window.begin <= now) continue;
      if (!nearest || std::llabs(v.window.begin - *predicted) <
                          std::llabs(*nearest - *predicted))
        nearest = v.window.begin;
    }
    if (!nearest) continue;
    const double err_min =
        std::abs(static_cast<double>(*nearest - *predicted)) / 60.0;
    error_minutes.add(err_min);
    if (err_min <= 90) ++hits;
  }
  std::printf("Q2  next home visit (asked daily at noon, last 2 weeks)\n");
  std::printf("    answered %d/%d, hit (<=90 min) %d/%d, mean |error| %.0f min\n",
              answered, asked, hits, answered, error_minutes.mean());

  // --- Q3: mall visit frequency. Tag places whose *dominant* ground-truth
  // category is Mall — the same judgement a user makes in the life-log UI
  // (a coarse GSM cluster that merely brushes the mall must not be tagged).
  std::map<core::PlaceUid, std::map<world::PlaceCategory, SimDuration>> overlap;
  for (const auto& v : pms.inference().visit_log()) {
    for (const auto& tv : trace.significant_visits(minutes(10))) {
      const SimDuration o = v.window.overlap_length(tv.window);
      if (o > 0) overlap[v.uid][world->place(tv.place).category] += o;
    }
  }
  for (const auto& [place_uid, categories] : overlap) {
    SimDuration best = 0;
    for (const auto& [category, o] : categories) best = std::max(best, o);
    const auto mall_it = categories.find(world::PlaceCategory::Mall);
    // A merged "mall complex" (mall + its cinema) still reads as a mall to
    // the user tagging it — accept Mall when it carries most of the dwell.
    if (mall_it != categories.end() && mall_it->second >= (best * 4) / 5)
      pms.tag_place(place_uid, "mall", days(kDays));
  }
  std::vector<core::PlaceUid> mall_uids = pms.places().with_label("mall");
  const double predicted_freq =
      cloud.analytics().visit_frequency_per_week(uid, mall_uids);
  // Ground truth mall visits per week.
  std::size_t truth_mall_visits = 0;
  for (const auto& v : trace.significant_visits(minutes(10)))
    if (world->place(v.place).category == world::PlaceCategory::Mall)
      ++truth_mall_visits;
  const double truth_freq = static_cast<double>(truth_mall_visits) /
                            (static_cast<double>(kDays) / 7.0);
  std::printf("Q3  mall visit frequency (%zu place(s) tagged 'mall')\n",
              mall_uids.size());
  std::printf("    predicted %.2f / week   truth %.2f / week\n", predicted_freq,
              truth_freq);
  std::printf("    (a merged mall+cinema complex counts its cinema stays too —\n"
              "     the paper's merged-place caveat surfaces here)\n");

  std::printf("\nshape check: Q1 error within tens of minutes, Q2 hit rate\n"
              "well above half, Q3 within ~1 visit/week of truth.\n");
  if (!json_path.empty() &&
      !telemetry::write_bench_json(json_path, "prediction",
                                   Json::object(), {0, 1, kDays}))
    return 1;
  return 0;
}
