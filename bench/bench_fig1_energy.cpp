// Experiment E1 — Figure 1 of the paper: power consumption analysis of the
// location interfaces under continuous sensing, on the HTC A310E Explorer
// (1230 mAh). The paper's headline: battery duration with GSM sampled every
// minute is ~11x the duration with GPS at the same rate.
//
// Two views are printed:
//   1. the analytic model (average power -> battery duration), and
//   2. a simulated validation: the sampling scheduler actually runs one
//      simulated day per (interface, interval) cell and the energy meter's
//      implied battery duration is reported.
#include <cstdio>

#include "energy/meter.hpp"
#include "energy/profile.hpp"
#include "sensing/scheduler.hpp"
#include "telemetry/export.hpp"
#include "telemetry/log.hpp"
#include "util/simtime.hpp"
#include "util/strfmt.hpp"

using namespace pmware;
using energy::Interface;

namespace {

constexpr Interface kInterfaces[] = {Interface::Gsm, Interface::Accelerometer,
                                     Interface::Wifi, Interface::Gps};
constexpr SimDuration kIntervals[] = {10, 30, 60, 120, 300, 600};

double simulated_duration_h(Interface interface, SimDuration interval) {
  energy::EnergyMeter meter;
  sensing::SamplingScheduler scheduler(&meter);
  scheduler.set_callback(interface, [](SimTime) {});
  scheduler.set_period(interface, interval);
  scheduler.run(TimeWindow{0, days(1)});
  return meter.implied_battery_duration_s(days(1)) / 3600.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      telemetry::bench_json_path(argc, argv, "fig1_energy");
  telemetry::apply_log_level_flag(argc, argv);
  const energy::PowerProfile profile = energy::PowerProfile::htc_explorer();

  std::printf("=== Figure 1: continuous-sensing battery duration ===\n");
  std::printf("battery: 1230 mAh @ 3.7 V = %.0f J, baseline %.1f mW\n\n",
              energy::Battery{}.capacity_j, profile.base_power_w * 1000);

  std::printf("-- analytic model: average power (mW) --\n");
  std::printf("%-10s", "interval");
  for (Interface i : kInterfaces) std::printf("%10s", to_string(i));
  std::printf("\n");
  for (SimDuration interval : kIntervals) {
    std::printf("%6llds   ", static_cast<long long>(interval));
    for (Interface i : kInterfaces)
      std::printf("%10.2f", profile.average_power_w(i, interval) * 1000);
    std::printf("\n");
  }

  std::printf("\n-- analytic model: battery duration (hours) --\n");
  std::printf("%-10s", "interval");
  for (Interface i : kInterfaces) std::printf("%10s", to_string(i));
  std::printf("\n");
  for (SimDuration interval : kIntervals) {
    std::printf("%6llds   ", static_cast<long long>(interval));
    for (Interface i : kInterfaces)
      std::printf("%10.1f",
                  continuous_sensing_duration_s(profile, i, interval) / 3600.0);
    std::printf("\n");
  }

  std::printf("\n-- simulated (scheduler + energy meter, 1 day): hours --\n");
  std::printf("%-10s", "interval");
  for (Interface i : kInterfaces) std::printf("%10s", to_string(i));
  std::printf("\n");
  for (SimDuration interval : kIntervals) {
    std::printf("%6llds   ", static_cast<long long>(interval));
    for (Interface i : kInterfaces)
      std::printf("%10.1f", simulated_duration_h(i, interval));
    std::printf("\n");
  }

  const double gsm_1min = continuous_sensing_duration_s(profile, Interface::Gsm, 60);
  const double gps_1min = continuous_sensing_duration_s(profile, Interface::Gps, 60);
  std::printf("\nheadline ratio (paper: ~11x): GSM@1min / GPS@1min = %.1fx\n",
              gsm_1min / gps_1min);
  std::printf("  GSM@1min:  %6.1f h (%.1f days)\n", gsm_1min / 3600,
              gsm_1min / 86400);
  std::printf("  WiFi@1min: %6.1f h\n",
              continuous_sensing_duration_s(profile, Interface::Wifi, 60) / 3600);
  std::printf("  GPS@1min:  %6.1f h\n", gps_1min / 3600);

  if (!json_path.empty()) {
    Json durations = Json::object();
    for (Interface i : kInterfaces) {
      Json per_interval = Json::object();
      for (SimDuration interval : kIntervals)
        per_interval.set(
            strfmt("%llds", static_cast<long long>(interval)),
            continuous_sensing_duration_s(profile, i, interval) / 3600.0);
      durations.set(to_string(i), std::move(per_interval));
    }
    Json extra = Json::object();
    extra.set("battery_duration_h", std::move(durations));
    extra.set("gsm_over_gps_at_1min", gsm_1min / gps_1min);
    if (!telemetry::write_bench_json(json_path, "fig1_energy",
                                     std::move(extra)))
      return 1;
  }
  return 0;
}
